//! Numeric invariant guards for module boundaries.
//!
//! The simulator and the area/cost models must never leak NaN, infinity,
//! or negative quantities into the DSE layer. These helpers turn such
//! values into typed [`AcsError::NonFinite`] errors at the boundary.

use crate::AcsError;

/// Require `value` to be finite (not NaN or ±∞).
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context` and `metric`.
pub fn ensure_finite(context: &str, metric: &str, value: f64) -> Result<f64, AcsError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context, metric, value))
    }
}

/// Require `value` to be finite and strictly positive — the contract for
/// latencies, areas, costs, and bandwidth-derived quantities.
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context` and `metric`.
pub fn ensure_positive(context: &str, metric: &str, value: f64) -> Result<f64, AcsError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context, metric, value))
    }
}

/// Require `value` to be finite and non-negative (zero allowed) — the
/// contract for additive breakdown terms such as per-phase times.
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context` and `metric`.
pub fn ensure_non_negative(context: &str, metric: &str, value: f64) -> Result<f64, AcsError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context, metric, value))
    }
}

/// [`ensure_finite`] with a lazily built context: `context` is invoked
/// only on the error path, so hot loops pay nothing for the string when
/// the value is healthy.
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context()` and `metric`.
pub fn ensure_finite_with(
    context: impl FnOnce() -> String,
    metric: &str,
    value: f64,
) -> Result<f64, AcsError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context(), metric, value))
    }
}

/// [`ensure_positive`] with a lazily built context (see
/// [`ensure_finite_with`]).
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context()` and `metric`.
pub fn ensure_positive_with(
    context: impl FnOnce() -> String,
    metric: &str,
    value: f64,
) -> Result<f64, AcsError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context(), metric, value))
    }
}

/// [`ensure_non_negative`] with a lazily built context (see
/// [`ensure_finite_with`]).
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context()` and `metric`.
pub fn ensure_non_negative_with(
    context: impl FnOnce() -> String,
    metric: &str,
    value: f64,
) -> Result<f64, AcsError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context(), metric, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_pass_through() {
        assert_eq!(ensure_finite("c", "m", 1.5), Ok(1.5));
        assert_eq!(ensure_positive("c", "m", 1e-300), Ok(1e-300));
        assert_eq!(ensure_non_negative("c", "m", 0.0), Ok(0.0));
    }

    #[test]
    fn nan_and_infinity_are_rejected_everywhere() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(ensure_finite("c", "m", bad).is_err());
            assert!(ensure_positive("c", "m", bad).is_err());
            assert!(ensure_non_negative("c", "m", bad).is_err());
        }
    }

    #[test]
    fn sign_contracts_differ() {
        assert!(ensure_positive("c", "m", 0.0).is_err());
        assert!(ensure_positive("c", "m", -1.0).is_err());
        assert!(ensure_non_negative("c", "m", -1.0).is_err());
        assert!(ensure_finite("c", "m", -1.0).is_ok());
    }

    #[test]
    fn errors_name_the_metric() {
        let e = ensure_positive("simulator", "tbt_s", f64::NAN).unwrap_err();
        assert!(e.to_string().contains("tbt_s"));
        assert!(e.to_string().contains("simulator"));
    }

    #[test]
    fn lazy_variants_match_eager_and_skip_context_on_success() {
        let mut built = false;
        let ctx = || {
            built = true;
            "lazy".to_owned()
        };
        assert_eq!(ensure_positive_with(ctx, "m", 2.0), Ok(2.0));
        assert!(!built, "context closure must not run on the success path");
        assert_eq!(ensure_finite_with(|| "c".to_owned(), "m", -1.0), Ok(-1.0));
        assert_eq!(ensure_non_negative_with(|| "c".to_owned(), "m", 0.0), Ok(0.0));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(ensure_finite_with(|| "c".to_owned(), "m", bad).is_err());
            assert!(ensure_positive_with(|| "c".to_owned(), "m", bad).is_err());
            assert!(ensure_non_negative_with(|| "c".to_owned(), "m", bad).is_err());
        }
        let e = ensure_positive_with(|| "lazy.ctx".to_owned(), "tbt_s", 0.0).unwrap_err();
        assert_eq!(e, ensure_positive("lazy.ctx", "tbt_s", 0.0).unwrap_err());
    }
}
