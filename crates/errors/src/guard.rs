//! Numeric invariant guards for module boundaries.
//!
//! The simulator and the area/cost models must never leak NaN, infinity,
//! or negative quantities into the DSE layer. These helpers turn such
//! values into typed [`AcsError::NonFinite`] errors at the boundary.

use crate::AcsError;

/// Require `value` to be finite (not NaN or ±∞).
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context` and `metric`.
pub fn ensure_finite(context: &str, metric: &str, value: f64) -> Result<f64, AcsError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context, metric, value))
    }
}

/// Require `value` to be finite and strictly positive — the contract for
/// latencies, areas, costs, and bandwidth-derived quantities.
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context` and `metric`.
pub fn ensure_positive(context: &str, metric: &str, value: f64) -> Result<f64, AcsError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context, metric, value))
    }
}

/// Require `value` to be finite and non-negative (zero allowed) — the
/// contract for additive breakdown terms such as per-phase times.
///
/// # Errors
///
/// Returns [`AcsError::NonFinite`] naming `context` and `metric`.
pub fn ensure_non_negative(context: &str, metric: &str, value: f64) -> Result<f64, AcsError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(AcsError::non_finite(context, metric, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_pass_through() {
        assert_eq!(ensure_finite("c", "m", 1.5), Ok(1.5));
        assert_eq!(ensure_positive("c", "m", 1e-300), Ok(1e-300));
        assert_eq!(ensure_non_negative("c", "m", 0.0), Ok(0.0));
    }

    #[test]
    fn nan_and_infinity_are_rejected_everywhere() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(ensure_finite("c", "m", bad).is_err());
            assert!(ensure_positive("c", "m", bad).is_err());
            assert!(ensure_non_negative("c", "m", bad).is_err());
        }
    }

    #[test]
    fn sign_contracts_differ() {
        assert!(ensure_positive("c", "m", 0.0).is_err());
        assert!(ensure_positive("c", "m", -1.0).is_err());
        assert!(ensure_non_negative("c", "m", -1.0).is_err());
        assert!(ensure_finite("c", "m", -1.0).is_ok());
    }

    #[test]
    fn errors_name_the_metric() {
        let e = ensure_positive("simulator", "tbt_s", f64::NAN).unwrap_err();
        assert!(e.to_string().contains("tbt_s"));
        assert!(e.to_string().contains("simulator"));
    }
}
