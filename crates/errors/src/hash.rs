//! Content hashing for cache keys: FNV-1a over canonical JSON.
//!
//! The evaluation pipeline is deterministic and pure — the same
//! (accelerator config, workload, policy vintage) always yields the same
//! result — so results can be memoised behind a content-addressed key.
//! The key material is the byte-deterministic output of [`crate::json`]'s
//! emitter (compact, insertion-ordered keys), hashed with 64-bit FNV-1a.
//! Every crate that builds a cache key goes through this module, so
//! digests are stable across crates and across runs.
//!
//! FNV-1a is not cryptographic; collisions are tolerated by storing the
//! canonical encoding alongside the digest (see `acs-cache`), which makes
//! the *encoding* the true key and the digest merely a shard/bucket index.

use crate::json::Value;

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over raw bytes.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Digest of a JSON value's canonical (compact, insertion-ordered)
/// encoding. Two values digest equal iff their canonical encodings are
/// byte-identical; callers that need key-order insensitivity must
/// normalise member order before calling.
#[must_use]
pub fn canonical_digest(value: &Value) -> u64 {
    fnv1a_64(value.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{object, parse};

    #[test]
    fn fnv1a_matches_published_test_vectors() {
        // The reference vectors from the FNV specification (Noll).
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn canonical_digests_are_pinned() {
        // These digests are cache-key material: changing the JSON
        // emitter's byte output or the hash silently invalidates every
        // persisted cache, so the exact values are pinned here.
        let simple = object(vec![("a", Value::Number(1.0))]);
        assert_eq!(simple.to_json(), "{\"a\":1}");
        assert_eq!(canonical_digest(&simple), fnv1a_64(b"{\"a\":1}"));
        assert_eq!(canonical_digest(&simple), 0x9c3e_82dd_6fca_e8b1);

        let nested = object(vec![
            ("config", object(vec![("hbm_tb_s", Value::Number(3.2))])),
            ("vintage", Value::String("oct-2023".into())),
        ]);
        assert_eq!(
            nested.to_json(),
            "{\"config\":{\"hbm_tb_s\":3.2},\"vintage\":\"oct-2023\"}"
        );
        assert_eq!(canonical_digest(&nested), 0x1cec_5fd8_b943_838a);
    }

    #[test]
    fn digest_is_stable_across_parse_round_trip() {
        let text = "{\"b\":2,\"a\":[1,true,null],\"s\":\"x\"}";
        let v = parse(text).unwrap();
        assert_eq!(canonical_digest(&v), canonical_digest(&parse(&v.to_json()).unwrap()));
        assert_eq!(canonical_digest(&v), fnv1a_64(text.as_bytes()));
    }

    #[test]
    fn distinct_values_get_distinct_digests() {
        let a = object(vec![("tpp", Value::Number(4800.0))]);
        let b = object(vec![("tpp", Value::Number(4800.5))]);
        assert_ne!(canonical_digest(&a), canonical_digest(&b));
    }

    #[test]
    fn key_order_is_significant() {
        // Canonical means "as emitted", not "sorted": callers normalise.
        let ab = object(vec![("a", Value::Number(1.0)), ("b", Value::Number(2.0))]);
        let ba = object(vec![("b", Value::Number(2.0)), ("a", Value::Number(1.0))]);
        assert_ne!(canonical_digest(&ab), canonical_digest(&ba));
    }
}
