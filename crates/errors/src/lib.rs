//! Workspace-wide error taxonomy and robustness primitives.
//!
//! Every crate in the workspace reports failures through [`AcsError`], a
//! single hand-rolled enum (the offline build has no access to external
//! error-handling crates). The taxonomy follows the error-handling policy
//! in `DESIGN.md`:
//!
//! * **Library code never panics** on bad input — malformed configs, NaN
//!   parameters, and infeasible requests become typed `Err` values.
//! * **Numeric invariants are enforced at module boundaries** with the
//!   [`guard`] helpers: no NaN, infinity, or negative latency/area/cost
//!   may escape the simulator or the cost models.
//! * **Panics are reserved for in-process bugs**, and the DSE sweep layer
//!   still contains them with `std::panic::catch_unwind`, converting them
//!   into [`AcsError::EvaluationPanic`].
//!
//! The crate also ships [`json`], a small dependency-free JSON emitter and
//! parser used for the sweep checkpoint format (JSONL) and for config
//! round-trips, replacing `serde` in the offline build.

pub mod guard;
pub mod hash;
pub mod json;

use std::error::Error;
use std::fmt;

/// Unified error type for the advanced-computing-sanctions workspace.
///
/// Variants are grouped by the pipeline stage that raises them; every
/// variant carries enough context to be reported in a sweep's failure
/// ledger without access to the original input.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AcsError {
    /// A configuration field holds a value outside its valid domain
    /// (raised at construction/validation time — `DeviceConfig::build`,
    /// `SystemConfig::new`, workload validation, …).
    InvalidConfig {
        /// Name of the offending field (e.g. `"hbm.bandwidth_gb_s"`).
        field: String,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A derived quantity could not be computed from the given inputs
    /// (e.g. no core count satisfies a TPP target).
    Infeasible {
        /// Description of the infeasible request.
        reason: String,
    },
    /// A simulator or model output violated a numeric invariant: NaN,
    /// infinity, or a negative latency/area/cost/energy.
    NonFinite {
        /// Where the value was produced (e.g. `"simulator.ttft_s"`).
        context: String,
        /// The metric that went bad.
        metric: String,
        /// The offending value, stringified (NaN/inf are not JSON).
        value: String,
    },
    /// A device-database lookup found no matching record.
    UnknownDevice {
        /// The query string that failed to match.
        query: String,
    },
    /// A device record failed to parse or validate.
    MalformedRecord {
        /// Identifier of the record (name or line number).
        record: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A design point's evaluation panicked; the panic was contained by
    /// the sweep harness and converted into this variant.
    EvaluationPanic {
        /// The design's name, when known.
        design: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A checkpoint file could not be read, written, or parsed.
    Checkpoint {
        /// Path of the checkpoint file.
        path: String,
        /// Description of the failure.
        reason: String,
    },
    /// An underlying I/O operation failed.
    Io {
        /// Path or resource involved.
        path: String,
        /// Stringified `std::io::Error`.
        reason: String,
    },
    /// A JSON document failed to parse or had an unexpected shape.
    Json {
        /// Description of the failure, with position where available.
        reason: String,
    },
    /// A wire-protocol violation: a malformed HTTP request, an
    /// unsupported method, an oversized payload, or an unroutable path.
    Protocol {
        /// Description of the violation.
        reason: String,
    },
    /// The service shed load: the accept queue was full or the server is
    /// shutting down. Clients should back off and retry.
    Overloaded {
        /// Description of the rejected work.
        reason: String,
    },
}

impl AcsError {
    /// Stable machine-readable tag for the variant, used in checkpoint
    /// files and failure summaries. Never contains spaces.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AcsError::InvalidConfig { .. } => "invalid_config",
            AcsError::Infeasible { .. } => "infeasible",
            AcsError::NonFinite { .. } => "non_finite",
            AcsError::UnknownDevice { .. } => "unknown_device",
            AcsError::MalformedRecord { .. } => "malformed_record",
            AcsError::EvaluationPanic { .. } => "evaluation_panic",
            AcsError::Checkpoint { .. } => "checkpoint",
            AcsError::Io { .. } => "io",
            AcsError::Json { .. } => "json",
            AcsError::Protocol { .. } => "protocol",
            AcsError::Overloaded { .. } => "overloaded",
        }
    }

    /// Convenience constructor for [`AcsError::InvalidConfig`].
    #[must_use]
    pub fn invalid_config(field: impl Into<String>, reason: impl Into<String>) -> Self {
        AcsError::InvalidConfig { field: field.into(), reason: reason.into() }
    }

    /// Convenience constructor for [`AcsError::NonFinite`].
    #[must_use]
    pub fn non_finite(context: impl Into<String>, metric: impl Into<String>, value: f64) -> Self {
        AcsError::NonFinite {
            context: context.into(),
            metric: metric.into(),
            value: format!("{value}"),
        }
    }

    /// Structural JSON form, used by sweep checkpoints so a resumed run
    /// reconstructs failures *exactly* as the original run produced them.
    #[must_use]
    pub fn to_json_value(&self) -> json::Value {
        use json::Value as V;
        let s = |v: &str| V::String(v.to_owned());
        let mut members: Vec<(&str, V)> = vec![("kind", s(self.kind()))];
        match self {
            AcsError::InvalidConfig { field, reason } => {
                members.push(("field", s(field)));
                members.push(("reason", s(reason)));
            }
            AcsError::Infeasible { reason }
            | AcsError::Json { reason }
            | AcsError::Protocol { reason }
            | AcsError::Overloaded { reason } => {
                members.push(("reason", s(reason)));
            }
            AcsError::NonFinite { context, metric, value } => {
                members.push(("context", s(context)));
                members.push(("metric", s(metric)));
                members.push(("value", s(value)));
            }
            AcsError::UnknownDevice { query } => members.push(("query", s(query))),
            AcsError::MalformedRecord { record, reason } => {
                members.push(("record", s(record)));
                members.push(("reason", s(reason)));
            }
            AcsError::EvaluationPanic { design, message } => {
                members.push(("design", s(design)));
                members.push(("message", s(message)));
            }
            AcsError::Checkpoint { path, reason } | AcsError::Io { path, reason } => {
                members.push(("path", s(path)));
                members.push(("reason", s(reason)));
            }
        }
        json::object(members)
    }

    /// Parse the structural form emitted by [`AcsError::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] when the document lacks a known `kind`
    /// or the variant's fields.
    pub fn from_json_value(v: &json::Value) -> Result<Self, AcsError> {
        let owned = |r: Result<&str, AcsError>| r.map(str::to_owned);
        let e = match v.require_str("kind")? {
            "invalid_config" => AcsError::InvalidConfig {
                field: owned(v.require_str("field"))?,
                reason: owned(v.require_str("reason"))?,
            },
            "infeasible" => AcsError::Infeasible { reason: owned(v.require_str("reason"))? },
            "non_finite" => AcsError::NonFinite {
                context: owned(v.require_str("context"))?,
                metric: owned(v.require_str("metric"))?,
                value: owned(v.require_str("value"))?,
            },
            "unknown_device" => {
                AcsError::UnknownDevice { query: owned(v.require_str("query"))? }
            }
            "malformed_record" => AcsError::MalformedRecord {
                record: owned(v.require_str("record"))?,
                reason: owned(v.require_str("reason"))?,
            },
            "evaluation_panic" => AcsError::EvaluationPanic {
                design: owned(v.require_str("design"))?,
                message: owned(v.require_str("message"))?,
            },
            "checkpoint" => AcsError::Checkpoint {
                path: owned(v.require_str("path"))?,
                reason: owned(v.require_str("reason"))?,
            },
            "io" => AcsError::Io {
                path: owned(v.require_str("path"))?,
                reason: owned(v.require_str("reason"))?,
            },
            "json" => AcsError::Json { reason: owned(v.require_str("reason"))? },
            "protocol" => AcsError::Protocol { reason: owned(v.require_str("reason"))? },
            "overloaded" => AcsError::Overloaded { reason: owned(v.require_str("reason"))? },
            other => {
                return Err(AcsError::Json { reason: format!("unknown error kind {other:?}") })
            }
        };
        Ok(e)
    }
}

impl fmt::Display for AcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcsError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            AcsError::Infeasible { reason } => write!(f, "infeasible request: {reason}"),
            AcsError::NonFinite { context, metric, value } => {
                write!(f, "non-finite result in {context}: {metric} = {value}")
            }
            AcsError::UnknownDevice { query } => write!(f, "unknown device: {query:?}"),
            AcsError::MalformedRecord { record, reason } => {
                write!(f, "malformed device record {record}: {reason}")
            }
            AcsError::EvaluationPanic { design, message } => {
                write!(f, "evaluation of {design:?} panicked: {message}")
            }
            AcsError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {path}: {reason}")
            }
            AcsError::Io { path, reason } => write!(f, "io error on {path}: {reason}"),
            AcsError::Json { reason } => write!(f, "json error: {reason}"),
            AcsError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            AcsError::Overloaded { reason } => write!(f, "overloaded: {reason}"),
        }
    }
}

impl Error for AcsError {}

impl From<std::io::Error> for AcsError {
    fn from(e: std::io::Error) -> Self {
        AcsError::Io { path: String::new(), reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_identifiers() {
        let cases: Vec<AcsError> = vec![
            AcsError::invalid_config("f", "r"),
            AcsError::Infeasible { reason: "r".into() },
            AcsError::non_finite("ctx", "m", f64::NAN),
            AcsError::UnknownDevice { query: "q".into() },
            AcsError::MalformedRecord { record: "1".into(), reason: "r".into() },
            AcsError::EvaluationPanic { design: "d".into(), message: "m".into() },
            AcsError::Checkpoint { path: "p".into(), reason: "r".into() },
            AcsError::Io { path: "p".into(), reason: "r".into() },
            AcsError::Json { reason: "r".into() },
            AcsError::Protocol { reason: "r".into() },
            AcsError::Overloaded { reason: "r".into() },
        ];
        for e in &cases {
            assert!(!e.kind().is_empty());
            assert!(!e.kind().contains(' '));
            assert!(!e.to_string().is_empty());
        }
        // Kinds are distinct across variants.
        let mut kinds: Vec<_> = cases.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), cases.len());
    }

    #[test]
    fn non_finite_stringifies_nan() {
        let e = AcsError::non_finite("sim", "ttft_s", f64::NAN);
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AcsError>();
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let cases: Vec<AcsError> = vec![
            AcsError::invalid_config("hbm.bandwidth_gb_s", "must be positive"),
            AcsError::Infeasible { reason: "no core count fits".into() },
            AcsError::non_finite("simulator", "tbt_s", f64::NAN),
            AcsError::UnknownDevice { query: "B9000".into() },
            AcsError::MalformedRecord { record: "line 3".into(), reason: "bad tpp".into() },
            AcsError::EvaluationPanic { design: "d-0".into(), message: "overflow".into() },
            AcsError::Checkpoint { path: "results/x.jsonl".into(), reason: "torn".into() },
            AcsError::Io { path: "/tmp/x".into(), reason: "denied".into() },
            AcsError::Json { reason: "trailing".into() },
            AcsError::Protocol { reason: "bad request line".into() },
            AcsError::Overloaded { reason: "queue full".into() },
        ];
        for e in &cases {
            let text = e.to_json_value().to_json();
            let back = AcsError::from_json_value(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, e);
        }
        assert!(AcsError::from_json_value(&json::parse("{\"kind\":\"nope\"}").unwrap()).is_err());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: AcsError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("gone"));
    }
}
