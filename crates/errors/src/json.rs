//! A small dependency-free JSON emitter and parser.
//!
//! The offline build environment has no access to `serde`/`serde_json`,
//! so the checkpoint format (JSONL) and config round-trips are built on
//! this module instead. It supports the full JSON data model with two
//! deliberate restrictions:
//!
//! * Numbers are `f64` (ample for every quantity in this workspace; u32
//!   sweep parameters round-trip exactly through f64).
//! * Object key order is preserved as written, keeping emitted
//!   checkpoints byte-deterministic.
//!
//! Non-finite numbers are not representable in JSON; [`Value::from_f64`]
//! refuses them with a typed error rather than emitting `NaN` tokens.

use crate::AcsError;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Wrap a finite `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] for NaN or infinite input: JSON cannot
    /// represent them, and silently mangling a checkpoint is worse than
    /// failing the write.
    pub fn from_f64(v: f64) -> Result<Self, AcsError> {
        if v.is_finite() {
            Ok(Value::Number(v))
        } else {
            Err(AcsError::Json { reason: format!("cannot serialise non-finite number {v}") })
        }
    }

    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned-integer accessor (rejects fractional and out-of-range).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String accessor.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Required-member accessor with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] when `self` is not an object or lacks
    /// `key`.
    pub fn require(&self, key: &str) -> Result<&Value, AcsError> {
        self.get(key)
            .ok_or_else(|| AcsError::Json { reason: format!("missing object member {key:?}") })
    }

    /// Required finite-number member.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] when absent or not a number.
    pub fn require_f64(&self, key: &str) -> Result<f64, AcsError> {
        self.require(key)?
            .as_f64()
            .ok_or_else(|| AcsError::Json { reason: format!("member {key:?} is not a number") })
    }

    /// Required unsigned-integer member.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] when absent or not a non-negative
    /// integer.
    pub fn require_u64(&self, key: &str) -> Result<u64, AcsError> {
        self.require(key)?
            .as_u64()
            .ok_or_else(|| AcsError::Json { reason: format!("member {key:?} is not an integer") })
    }

    /// Required string member.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] when absent or not a string.
    pub fn require_str(&self, key: &str) -> Result<&str, AcsError> {
        self.require(key)?
            .as_str()
            .ok_or_else(|| AcsError::Json { reason: format!("member {key:?} is not a string") })
    }

    /// Required boolean member.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] when absent or not a boolean.
    pub fn require_bool(&self, key: &str) -> Result<bool, AcsError> {
        self.require(key)?
            .as_bool()
            .ok_or_else(|| AcsError::Json { reason: format!("member {key:?} is not a boolean") })
    }

    /// Serialise to compact JSON (no whitespace, keys in insertion
    /// order — byte-deterministic for identical values).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                // Rust's shortest round-trip float formatting; integers
                // print without a trailing ".0".
                let _ = write!(out, "{n}");
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build an object from key/value pairs (helper for emitters).
#[must_use]
pub fn object(members: Vec<(&str, Value)>) -> Value {
    Value::Object(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns [`AcsError::Json`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<Value, AcsError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Maximum container nesting [`parse`] accepts. The parser recurses per
/// nesting level, so without a ceiling a tiny hostile input ( `"["`
/// repeated ~50k times) overflows the thread stack — an abort, not a
/// catchable panic. Every document this codebase emits is a handful of
/// levels deep; 128 is generous headroom, not a constraint.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> AcsError {
        AcsError::Json { reason: format!("{msg} at byte {}", self.pos) }
    }

    fn descend(&mut self) -> Result<(), AcsError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("containers nested deeper than 128 levels"));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), AcsError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, AcsError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, AcsError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Value, AcsError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Value::Number(n))
    }

    fn string(&mut self) -> Result<String, AcsError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired: this parser reads
                            // its own emitter's output, which never emits
                            // them. Reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, AcsError> {
        self.descend()?;
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, AcsError> {
        self.descend()?;
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // Fuzzer-found: the recursive-descent parser had no depth limit,
        // so a kilobyte of '[' aborted the process. The limit must trip
        // as a typed error, and legitimate depth must still parse.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        let hostile = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(&hostile).is_err(), "201 levels exceeds the ceiling");
        let fine = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&fine).is_ok(), "100 levels is within the ceiling");
        let mixed = format!("{}{}", "{\"k\":[".repeat(200), "x");
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1.5", "1e300", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_json()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn object_round_trip_preserves_order_and_bytes() {
        let v = object(vec![
            ("b", Value::Number(2.0)),
            ("a", Value::Number(1.5)),
            ("s", Value::String("x\n\"y\"".into())),
            ("arr", Value::Array(vec![Value::Null, Value::Bool(true)])),
        ]);
        let s = v.to_json();
        assert_eq!(s, "{\"b\":2,\"a\":1.5,\"s\":\"x\\n\\\"y\\\"\",\"arr\":[null,true]}");
        let back = parse(&s).unwrap();
        assert_eq!(back, v);
        // Emission is byte-deterministic.
        assert_eq!(back.to_json(), s);
    }

    #[test]
    fn f64_round_trips_exactly() {
        // Rust's float formatting is shortest-round-trip; checkpoints rely
        // on results surviving a write/read cycle bit-for-bit.
        for x in [0.1, 1.0 / 3.0, 2.039e3, f64::MIN_POSITIVE, 826.0, 6.043583, 1e-300] {
            let v = Value::from_f64(x).unwrap();
            let back = parse(&v.to_json()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_numbers_are_refused() {
        assert!(Value::from_f64(f64::NAN).is_err());
        assert!(Value::from_f64(f64::INFINITY).is_err());
        assert!(parse("NaN").is_err());
        assert!(parse("1e999").is_err());
    }

    #[test]
    fn malformed_documents_error_with_position() {
        for bad in ["{", "[1,", "{\"a\"}", "\"unterminated", "tru", "1 2", "{'a':1}"] {
            let e = parse(bad).unwrap_err();
            assert!(matches!(e, AcsError::Json { .. }), "{bad}");
            assert!(e.to_string().contains("byte"), "{bad}: {e}");
        }
    }

    #[test]
    fn accessors_type_check() {
        let v = parse("{\"n\":3,\"s\":\"x\",\"b\":false,\"f\":1.5}").unwrap();
        assert_eq!(v.require_u64("n").unwrap(), 3);
        assert_eq!(v.require_str("s").unwrap(), "x");
        assert!(!v.require_bool("b").unwrap());
        assert_eq!(v.require_f64("f").unwrap(), 1.5);
        assert!(v.require_u64("f").is_err());
        assert!(v.require("missing").is_err());
        assert_eq!(v.get("missing"), None);
        assert!(Value::Null.get("x").is_none());
    }

    #[test]
    fn unicode_and_control_characters_survive() {
        let s = "héllo \u{1} – ✓";
        let v = Value::String(s.into());
        assert_eq!(parse(&v.to_json()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn jsonl_lines_parse_independently() {
        let lines = "{\"i\":0}\n{\"i\":1}\n";
        let parsed: Vec<Value> = lines.lines().map(|l| parse(l).unwrap()).collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].require_u64("i").unwrap(), 1);
    }
}
