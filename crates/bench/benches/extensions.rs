//! Benchmarks for the extension studies: chiplet packaging, power,
//! binning, serving, and sensitivity analysis.

use acs_bench::{a100_sim, workload};
use acs_hw::binning::{Bin, BinningModel};
use acs_hw::chiplet::{ChipletPackage, PackagingModel};
use acs_hw::{AreaModel, CostModel, DeviceConfig, PowerModel};
use acs_llm::{LengthDistribution, ModelConfig, RequestTrace};
use acs_sim::{energy_per_token_j, simulate_serving, ServingConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn chiplet_costing(c: &mut Criterion) {
    let logical = DeviceConfig::a100_like();
    let am = AreaModel::n7();
    let cm = CostModel::n7();
    c.bench_function("ext_chiplet_package_costing", |b| {
        b.iter(|| {
            [1u32, 2, 4]
                .iter()
                .map(|&n| {
                    ChipletPackage::new(black_box(logical.clone()), n, PackagingModel::advanced())
                        .unwrap()
                        .package_cost_usd(&am, &cm)
                })
                .sum::<f64>()
        })
    });
}

fn power_accounting(c: &mut Criterion) {
    let sim = a100_sim();
    let model = ModelConfig::gpt3_175b();
    let w = workload();
    let p = PowerModel::n7();
    c.bench_function("ext_power_energy_per_token", |b| {
        b.iter(|| energy_per_token_j(black_box(&sim), &model, &w, &p))
    });
}

fn binning_split(c: &mut Criterion) {
    let device = DeviceConfig::builder().core_count(128).l2_mib(48).build().unwrap();
    let area = AreaModel::n7().die_area(&device);
    let model = BinningModel::for_device(&device, &area);
    let cm = CostModel::n7();
    let bins = [Bin::new("full", 128), Bin::new("flag", 124), Bin::new("a100", 108)];
    c.bench_function("ext_binning_split", |b| {
        b.iter(|| model.bin_split(black_box(&cm), &bins))
    });
}

fn serving_trace(c: &mut Criterion) {
    let sim = a100_sim();
    let model = ModelConfig::llama3_8b();
    let trace = RequestTrace::synthetic(
        4.0,
        20.0,
        LengthDistribution::chat_prompts(),
        LengthDistribution::chat_outputs(),
        9,
    );
    let mut g = c.benchmark_group("ext_serving");
    g.sample_size(10);
    g.bench_function("continuous_batching_trace", |b| {
        b.iter(|| simulate_serving(black_box(&sim), &model, &trace, ServingConfig::default()))
    });
    g.finish();
}

fn sensitivity(c: &mut Criterion) {
    let reference = DeviceConfig::a100_like();
    let model = ModelConfig::gpt3_175b();
    let w = workload();
    c.bench_function("ext_sensitivity_elasticities", |b| {
        b.iter(|| {
            acs_dse::elasticities(
                black_box(&reference),
                &model,
                &w,
                acs_dse::sensitivity::Target::Tbt,
            )
        })
    });
}

criterion_group!(
    benches,
    chiplet_costing,
    power_accounting,
    binning_split,
    serving_trace,
    sensitivity
);
criterion_main!(benches);
