//! One benchmark group per paper figure: each times the regeneration of
//! that figure's data series (the same computations `acs-repro` runs).

use acs_bench::workload;
use acs_core::{
    architectural_consistency, indicator_report, marketing_consistency, optimize_oct2022,
    ArchClassifier, FixedParam, LatencyMetric,
};
use acs_devices::{fig1_devices, GpuDatabase};
use acs_dse::{DseRunner, SweepSpec};
use acs_hw::{DeviceConfig, SystemConfig};
use acs_llm::ModelConfig;
use acs_policy::thresholds::min_area_unregulated_dc;
use acs_policy::{Acr2022, Acr2023};
use acs_sim::Simulator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig1_and_fig2(c: &mut Criterion) {
    let named = fig1_devices();
    let r22 = Acr2022::published();
    let r23 = Acr2023::published();
    let mut g = c.benchmark_group("fig1_fig2");
    g.bench_function("fig1a_classification", |b| {
        b.iter(|| named.iter().map(|r| r22.classify(black_box(&r.to_metrics()))).filter(|c| c.is_restricted()).count())
    });
    g.bench_function("fig1b_classification", |b| {
        b.iter(|| named.iter().map(|r| r23.classify(black_box(&r.to_metrics()))).filter(|c| c.is_restricted()).count())
    });
    g.bench_function("fig2_area_floor_curve", |b| {
        b.iter(|| {
            (2..48)
                .map(|i| min_area_unregulated_dc(&r23, f64::from(i) * 100.0))
                .sum::<f64>()
        })
    });
    g.finish();
}

fn fig5(c: &mut Criterion) {
    let model = ModelConfig::gpt3_175b();
    let w = workload();
    c.bench_function("fig5_tpp_bw_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cores in [86u32, 108, 129, 151, 173] {
                let cfg = DeviceConfig::builder()
                    .core_count(cores)
                    .device_bandwidth_gb_s(500.0)
                    .build()
                    .unwrap();
                let sim = Simulator::new(SystemConfig::quad(cfg).unwrap());
                acc += sim.ttft_s(black_box(&model), &w) + sim.tbt_s(&model, &w);
            }
            acc
        })
    });
}

fn fig6(c: &mut Criterion) {
    let model = ModelConfig::gpt3_175b();
    let w = workload();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("oct2022_dse_512_designs", |b| {
        b.iter(|| optimize_oct2022(black_box(&model), &w))
    });
    g.finish();
}

fn fig7_fig8(c: &mut Criterion) {
    let runner = DseRunner::new(ModelConfig::gpt3_175b(), workload());
    let spec = SweepSpec::table3_fig7();
    let mut g = c.benchmark_group("fig7_fig8");
    g.sample_size(10);
    g.bench_function("oct2023_dse_1536_designs_2400tpp", |b| {
        b.iter(|| runner.run(black_box(&spec), 2400.0))
    });
    g.finish();
}

fn fig9_fig10(c: &mut Criterion) {
    let db = GpuDatabase::curated_65();
    let rule = Acr2023::published();
    let classifier = ArchClassifier::paper();
    let mut g = c.benchmark_group("fig9_fig10");
    g.bench_function("fig9_marketing_consistency", |b| {
        b.iter(|| marketing_consistency(black_box(&db), &rule))
    });
    g.bench_function("fig10_architectural_consistency", |b| {
        b.iter(|| architectural_consistency(black_box(&db), &classifier))
    });
    g.finish();
}

fn fig11_fig12(c: &mut Criterion) {
    let designs = DseRunner::new(ModelConfig::gpt3_175b(), workload())
        .run(&SweepSpec::table3_fig6(), 4800.0);
    let within: Vec<_> = designs.into_iter().filter(|d| d.within_reticle).collect();
    let mut g = c.benchmark_group("fig11_fig12");
    g.bench_function("indicator_columns", |b| {
        b.iter(|| {
            indicator_report(
                black_box(&within),
                LatencyMetric::Tbt,
                &FixedParam::fig11_columns(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, fig1_and_fig2, fig5, fig6, fig7_fig8, fig9_fig10, fig11_fig12);
criterion_main!(benches);
