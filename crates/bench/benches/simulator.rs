//! Micro-benchmarks of the analytical model's kernels.

use acs_bench::{a100_sim, models, workload};
use acs_devices::GpuDatabase;
use acs_hw::{AreaModel, CostModel, DeviceConfig};
use acs_llm::{InferencePhase, MatmulKind, MatmulOp};
use acs_policy::{Acr2022, Acr2023};
use acs_sim::{matmul::matmul_cost, SimParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul_model(c: &mut Criterion) {
    let device = DeviceConfig::a100_like();
    let params = SimParams::calibrated();
    let prefill_op = MatmulOp {
        name: "ffn_up",
        m: 65536,
        n: 12288,
        k: 12288,
        count: 1,
        b_shared_by: 1,
        kind: MatmulKind::Weight,
    };
    let decode_op = MatmulOp { m: 32, ..prefill_op.clone() };
    let mut g = c.benchmark_group("matmul_model");
    g.bench_function("prefill_ffn", |b| {
        b.iter(|| matmul_cost(black_box(&prefill_op), &device, &params, 0.0, 0.0))
    });
    g.bench_function("decode_ffn", |b| {
        b.iter(|| matmul_cost(black_box(&decode_op), &device, &params, 1.0, 1.0))
    });
    g.finish();
}

fn bench_layer_latency(c: &mut Criterion) {
    let sim = a100_sim();
    let w = workload();
    let mut g = c.benchmark_group("layer_latency");
    for model in models() {
        let tag = if model.name().contains("GPT") { "gpt3" } else { "llama3" };
        g.bench_function(format!("{tag}_prefill"), |b| {
            b.iter(|| sim.simulate_layer(black_box(&model), &w, InferencePhase::Prefill))
        });
        g.bench_function(format!("{tag}_decode"), |b| {
            b.iter(|| sim.simulate_layer(black_box(&model), &w, w.decode_phase()))
        });
    }
    g.finish();
}

fn bench_classification(c: &mut Criterion) {
    let db = GpuDatabase::curated_65();
    let r22 = Acr2022::published();
    let r23 = Acr2023::published();
    c.bench_function("classify_65_devices_both_rules", |b| {
        b.iter(|| {
            db.iter()
                .map(|r| {
                    let m = r.to_metrics();
                    (r22.classify(black_box(&m)), r23.classify(&m))
                })
                .count()
        })
    });
}

fn bench_area_cost_models(c: &mut Criterion) {
    let device = DeviceConfig::a100_like();
    let area_model = AreaModel::n7();
    let cost_model = CostModel::n7();
    c.bench_function("area_and_cost_model", |b| {
        b.iter(|| {
            let area = area_model.die_area(black_box(&device)).total_mm2();
            cost_model.good_die_cost_usd(area)
        })
    });
}

criterion_group!(
    benches,
    bench_matmul_model,
    bench_layer_latency,
    bench_classification,
    bench_area_cost_models
);
criterion_main!(benches);
