//! One benchmark group per paper table.

use acs_bench::workload;
use acs_core::{optimize_oct2023, ComplianceOverhead};
use acs_hw::{AreaModel, CostModel, DeviceConfig, SystolicDims};
use acs_llm::ModelConfig;
use acs_policy::{Acr2022, Acr2023, DeviceMetrics, MarketSegment};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    let r22 = Acr2022::published();
    let r23 = Acr2023::published();
    let probes: Vec<DeviceMetrics> = (0..64)
        .map(|i| {
            DeviceMetrics::new(
                format!("p{i}"),
                f64::from(i) * 120.0,
                f64::from(i % 16) * 60.0,
                400.0 + f64::from(i) * 10.0,
                true,
                if i % 2 == 0 { MarketSegment::DataCenter } else { MarketSegment::NonDataCenter },
            )
        })
        .collect();
    c.bench_function("table1_rule_evaluation", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|p| {
                    r22.classify(black_box(p)).is_restricted()
                        || r23.classify(p).is_restricted()
                })
                .count()
        })
    });
}

fn table2(c: &mut Criterion) {
    c.bench_function("table2_model_construction", |b| {
        b.iter(|| {
            let g = ModelConfig::gpt3_175b();
            let l = ModelConfig::llama3_8b();
            black_box(g.total_params() + l.total_params())
        })
    });
}

fn table3(c: &mut Criterion) {
    // Table 3 is a sweep specification; bench its materialisation.
    use acs_dse::SweepSpec;
    c.bench_function("table3_sweep_materialisation", |b| {
        b.iter(|| SweepSpec::table3_fig7().configs(black_box(2400.0)).len())
    });
}

fn table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("pd_compliance_cost_study", |b| {
        b.iter(|| {
            let report =
                optimize_oct2023(&ModelConfig::gpt3_175b(), &workload(), black_box(2400.0));
            let compliant = report.best_ttft().cloned();
            let non = report
                .designs
                .iter()
                .filter(|d| d.within_reticle && !d.pd_unregulated_2023)
                .min_by(|a, b| a.ttft_s.total_cmp(&b.ttft_s))
                .cloned();
            match (compliant, non) {
                (Some(cd), Some(nd)) => Some(ComplianceOverhead::between(&cd, &nd)),
                _ => None,
            }
        })
    });
    g.finish();
}

fn table5_area_cost(c: &mut Criterion) {
    // The Table-5 restriction study leans on the area/cost models; bench
    // an evaluation of a representative restricted configuration.
    let cfg = DeviceConfig::builder()
        .core_count(831)
        .lanes_per_core(8)
        .systolic(SystolicDims::square(4))
        .l1_kib_per_core(32)
        .l2_mib(8)
        .hbm_bandwidth_tb_s(0.8)
        .device_bandwidth_gb_s(400.0)
        .build()
        .unwrap();
    let area_model = AreaModel::n7();
    let cost_model = CostModel::n7();
    c.bench_function("table5_restricted_design_costing", |b| {
        b.iter(|| {
            let area = area_model.die_area(black_box(&cfg)).total_mm2();
            cost_model.cost_for_good_dies_usd(area, 1_000_000)
        })
    });
}

criterion_group!(benches, table1, table2, table3, table4, table5_area_cost);
criterion_main!(benches);
