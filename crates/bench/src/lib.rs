//! Shared fixtures for the benchmark harness.
//!
//! The benches live in `benches/`:
//!
//! * `simulator` — micro-benchmarks of the analytical model's kernels
//!   (matmul cost, layer simulation, classification, area/cost models).
//! * `figures` — one group per paper figure, timing the full
//!   regeneration of each figure's data series.
//! * `tables` — one group per paper table.

use acs_hw::{DeviceConfig, SystemConfig};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::Simulator;

/// The calibrated A100 quad-node simulator used across benches.
#[must_use]
pub fn a100_sim() -> Simulator {
    Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).expect("quad node"))
}

/// The two evaluation models.
#[must_use]
pub fn models() -> [ModelConfig; 2] {
    [ModelConfig::gpt3_175b(), ModelConfig::llama3_8b()]
}

/// The paper's workload.
#[must_use]
pub fn workload() -> WorkloadConfig {
    WorkloadConfig::paper_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let sim = a100_sim();
        let w = workload();
        for m in models() {
            assert!(sim.ttft_s(&m, &w) > 0.0);
        }
    }
}
