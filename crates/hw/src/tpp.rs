//! Total Processing Performance (TPP) arithmetic.
//!
//! TPP is the October 2022/2023 Advanced Computing Rule's headline metric:
//! the maximum theoretical tera-operations per second multiplied by the
//! operation bitwidth, aggregated over all dies in a package, with a fused
//! multiply-accumulate counted as two operations.
//!
//! This module also solves the *inverse* problem chip designers face under
//! the rules (Eq. 1 of the paper): given a TPP ceiling, a clock frequency,
//! systolic-array dimensions and a lane count, what is the largest core
//! count that stays under the ceiling?

use crate::config::{DataType, SystolicDims};
use crate::error::HwError;
use std::fmt;

/// Total Processing Performance (`TOPS × bitwidth`).
///
/// A thin newtype so TPP values cannot be confused with TOPS, bandwidths,
/// or performance densities in policy code.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Tpp(pub f64);

impl Tpp {
    /// Compute TPP from a peak TOPS figure and an operand format.
    #[must_use]
    pub fn from_tops(tops: f64, datatype: DataType) -> Self {
        Tpp(tops * f64::from(datatype.bit_width()))
    }

    /// The TOPS component for a given format.
    #[must_use]
    pub fn to_tops(self, datatype: DataType) -> f64 {
        self.0 / f64::from(datatype.bit_width())
    }
}

impl fmt::Display for Tpp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} TPP", self.0)
    }
}

/// Performance density: TPP divided by applicable (non-planar) die area
/// in mm² (October 2023 rule).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PerfDensity(pub f64);

impl fmt::Display for PerfDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} TPP/mm2", self.0)
    }
}

/// The largest number of systolic-array MAC units a device may carry and
/// still have TPP strictly below `tpp_limit` at clock `frequency_ghz`
/// (the `FP_max(TPP)` term of Eq. 1).
///
/// # Example
///
/// ```
/// use acs_hw::{tpp::max_macs_for_tpp, DataType};
///
/// // 4800 TPP at FP16 and 1.41 GHz allows just under 106,383 MACs.
/// let macs = max_macs_for_tpp(4800.0, 1.41, DataType::Fp16);
/// assert_eq!(macs, 106_382);
/// ```
#[must_use]
pub fn max_macs_for_tpp(tpp_limit: f64, frequency_ghz: f64, datatype: DataType) -> u64 {
    if tpp_limit <= 0.0 || frequency_ghz <= 0.0 {
        return 0;
    }
    // TPP = 2 * macs * f(GHz) * 1e9 / 1e12 * bits  =>  macs = TPP * 500 / (f * bits)
    let macs = tpp_limit * 500.0 / (frequency_ghz * f64::from(datatype.bit_width()));
    // Strictly below the limit: if exactly on the threshold, step down one.
    let floor = macs.floor();
    if (macs - floor).abs() < 1e-9 && floor > 0.0 {
        floor as u64 - 1
    } else {
        floor as u64
    }
}

/// The largest core count such that
/// `DIMX · DIMY · lanes · cores · 2 · f × bitwidth` stays strictly below
/// `tpp_limit` (Eq. 1 rearranged for `CD`).
///
/// # Errors
///
/// Returns [`HwError::Infeasible`] when even a single core exceeds the
/// limit (e.g. a huge array with a tiny TPP budget).
///
/// # Example
///
/// ```
/// use acs_hw::{tpp::cores_for_tpp, DataType, SystolicDims};
///
/// // The paper's 4800-TPP DSE: 16x16 arrays, 4 lanes -> 103 cores (TPP 4759).
/// let cores = cores_for_tpp(4800.0, 1.41, DataType::Fp16, SystolicDims::square(16), 4)?;
/// assert_eq!(cores, 103);
/// # Ok::<(), acs_hw::HwError>(())
/// ```
pub fn cores_for_tpp(
    tpp_limit: f64,
    frequency_ghz: f64,
    datatype: DataType,
    systolic: SystolicDims,
    lanes_per_core: u32,
) -> Result<u32, HwError> {
    let macs_per_core = systolic.macs() * u64::from(lanes_per_core);
    if macs_per_core == 0 {
        return Err(HwError::Infeasible {
            reason: "core has zero MAC units".to_owned(),
        });
    }
    let max_macs = max_macs_for_tpp(tpp_limit, frequency_ghz, datatype);
    let cores = max_macs / macs_per_core;
    if cores == 0 {
        return Err(HwError::Infeasible {
            reason: format!(
                "no core count puts {} {lanes_per_core}-lane cores under {tpp_limit} TPP",
                systolic
            ),
        });
    }
    u32::try_from(cores).map_err(|_| HwError::Infeasible {
        reason: "core count overflows u32".to_owned(),
    })
}

/// TPP achieved by a (cores, lanes, dims, frequency, datatype) tuple,
/// without building a full [`crate::DeviceConfig`].
#[must_use]
pub fn tpp_of(
    cores: u32,
    lanes_per_core: u32,
    systolic: SystolicDims,
    frequency_ghz: f64,
    datatype: DataType,
) -> Tpp {
    let macs = systolic.macs() as f64 * f64::from(lanes_per_core) * f64::from(cores);
    Tpp(2.0 * macs * frequency_ghz * 1e9 / 1e12 * f64::from(datatype.bit_width()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 1.41;

    #[test]
    fn max_macs_is_strictly_below_limit() {
        let macs = max_macs_for_tpp(4800.0, F, DataType::Fp16);
        let achieved = 2.0 * macs as f64 * F * 1e9 / 1e12 * 16.0;
        assert!(achieved < 4800.0);
        // And one more MAC would meet or exceed it.
        let above = 2.0 * (macs + 1) as f64 * F * 1e9 / 1e12 * 16.0;
        assert!(above >= 4800.0 - 1e-6);
    }

    #[test]
    fn paper_4800_tpp_dse_uses_103_cores() {
        // §4.1: "we set device core count to 103 (TPP 4759)".
        let cores =
            cores_for_tpp(4800.0, F, DataType::Fp16, SystolicDims::square(16), 4).unwrap();
        assert_eq!(cores, 103);
        let tpp = tpp_of(cores, 4, SystolicDims::square(16), F, DataType::Fp16);
        assert!((tpp.0 - 4759.0).abs() < 5.0, "tpp = {tpp}");
    }

    #[test]
    fn cores_scale_inversely_with_lane_count() {
        let c1 = cores_for_tpp(4800.0, F, DataType::Fp16, SystolicDims::square(16), 1).unwrap();
        let c4 = cores_for_tpp(4800.0, F, DataType::Fp16, SystolicDims::square(16), 4).unwrap();
        assert!(c1 >= 4 * c4);
        assert!(c1 <= 4 * (c4 + 1));
    }

    #[test]
    fn infeasible_when_single_core_exceeds_budget() {
        let err = cores_for_tpp(10.0, F, DataType::Fp16, SystolicDims::square(128), 8);
        assert!(matches!(err, Err(HwError::Infeasible { .. })));
    }

    #[test]
    fn tpp_of_matches_device_config() {
        let d = crate::DeviceConfig::a100_like();
        let t = tpp_of(d.core_count(), d.lanes_per_core(), d.systolic(), d.frequency_ghz(), d.datatype());
        assert!((t.0 - d.tpp().0).abs() < 1e-6);
    }

    #[test]
    fn from_tops_round_trips() {
        let t = Tpp::from_tops(312.0, DataType::Fp16);
        assert!((t.0 - 4992.0).abs() < 1e-9);
        assert!((t.to_tops(DataType::Fp16) - 312.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_allows_no_macs() {
        assert_eq!(max_macs_for_tpp(0.0, F, DataType::Fp16), 0);
        assert_eq!(max_macs_for_tpp(-5.0, F, DataType::Fp16), 0);
    }

    #[test]
    fn int8_budget_allows_more_macs_than_fp16() {
        // Same TPP budget, narrower format => lower bitwidth multiplier =>
        // more MACs permitted.
        let i8 = max_macs_for_tpp(4800.0, F, DataType::Int8);
        let f16 = max_macs_for_tpp(4800.0, F, DataType::Fp16);
        assert!(i8 > f16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tpp(4992.0).to_string(), "4992 TPP");
        assert_eq!(PerfDensity(6.04).to_string(), "6.04 TPP/mm2");
    }
}
