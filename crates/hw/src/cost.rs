//! Wafer economics: dies per wafer, defect-limited yield, silicon cost.
//!
//! Calibrated to reproduce the paper's Table 4 on 7 nm: a 753 mm² die costs
//! ≈ $134 in raw silicon and ≈ $350M per million *good* dies; a 523 mm² die
//! costs ≈ $88 and ≈ $177M.


/// Defect-limited yield model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum YieldModel {
    /// Seeds model: `Y = exp(-A · D0)`. The reproduction's default.
    #[default]
    Seeds,
    /// Murphy model: `Y = ((1 - exp(-A·D0)) / (A·D0))²`.
    Murphy,
    /// Poisson model with clustering: `Y = (1 + A·D0/α)^(-α)` with α = 2
    /// (negative binomial).
    NegativeBinomial,
}

impl YieldModel {
    /// Yield for a die of `area_mm2` at defect density `d0_per_cm2`.
    ///
    /// Returns a value in `(0, 1]`; zero-area dies yield 1.
    #[must_use]
    pub fn die_yield(self, area_mm2: f64, d0_per_cm2: f64) -> f64 {
        let ad = (area_mm2 / 100.0) * d0_per_cm2; // defects per die
        if ad <= 0.0 {
            return 1.0;
        }
        match self {
            YieldModel::Seeds => (-ad).exp(),
            YieldModel::Murphy => {
                let t = (1.0 - (-ad).exp()) / ad;
                t * t
            }
            YieldModel::NegativeBinomial => {
                let alpha = 2.0;
                (1.0 + ad / alpha).powf(-alpha)
            }
        }
    }
}

/// Wafer cost model for one process node.
///
/// # Example
///
/// ```
/// use acs_hw::CostModel;
///
/// let m = CostModel::n7();
/// // A ~523 mm2 die (Table 4's non-compliant design) costs ≈ $88.
/// let cost = m.die_cost_usd(523.0);
/// assert!((cost - 88.0).abs() < 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Wafer diameter in mm (300 for all modern logic).
    pub wafer_diameter_mm: f64,
    /// Processed wafer cost in USD.
    pub wafer_cost_usd: f64,
    /// Defect density in defects/cm².
    pub defect_density_per_cm2: f64,
    /// Yield model to apply.
    pub yield_model: YieldModel,
}

impl CostModel {
    /// Public-estimate TSMC 7 nm economics (≈ $9,346/wafer, D0 ≈ 0.13/cm²),
    /// calibrated against the paper's Table 4.
    #[must_use]
    pub fn n7() -> Self {
        CostModel {
            wafer_diameter_mm: 300.0,
            wafer_cost_usd: 9346.0,
            defect_density_per_cm2: 0.13,
            yield_model: YieldModel::Seeds,
        }
    }

    /// Candidate die sites per wafer, by the standard estimate
    /// `π(d/2)²/A − πd/√(2A)` (the second term discounts edge loss).
    ///
    /// Returns 0 for dies larger than a wafer.
    #[must_use]
    pub fn dies_per_wafer(&self, die_area_mm2: f64) -> f64 {
        if die_area_mm2 <= 0.0 {
            return 0.0;
        }
        let r = self.wafer_diameter_mm / 2.0;
        let gross = std::f64::consts::PI * r * r / die_area_mm2
            - std::f64::consts::PI * self.wafer_diameter_mm / (2.0 * die_area_mm2).sqrt();
        gross.max(0.0)
    }

    /// Fraction of dies free of fatal defects.
    #[must_use]
    pub fn die_yield(&self, die_area_mm2: f64) -> f64 {
        self.yield_model.die_yield(die_area_mm2, self.defect_density_per_cm2)
    }

    /// Raw silicon cost per die (wafer cost amortised over all die sites,
    /// ignoring defects) — the paper's "Silicon Die Cost" row.
    ///
    /// Returns infinity when no die fits on a wafer.
    #[must_use]
    pub fn die_cost_usd(&self, die_area_mm2: f64) -> f64 {
        let dpw = self.dies_per_wafer(die_area_mm2);
        if dpw <= 0.0 {
            return f64::INFINITY;
        }
        self.wafer_cost_usd / dpw
    }

    /// Cost per *good* die (raw cost divided by yield) — what one must pay,
    /// on average, per defect-free die.
    #[must_use]
    pub fn good_die_cost_usd(&self, die_area_mm2: f64) -> f64 {
        self.die_cost_usd(die_area_mm2) / self.die_yield(die_area_mm2)
    }

    /// Total cost to obtain `n` good dies — the paper's
    /// "1M Good Dies Cost" row with `n = 1_000_000`.
    #[must_use]
    pub fn cost_for_good_dies_usd(&self, die_area_mm2: f64, n: u64) -> f64 {
        self.good_die_cost_usd(die_area_mm2) * n as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::n7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_compliant_die_cost() {
        let m = CostModel::n7();
        // 753 mm² => $134 raw, ≈ $350M per 1M good dies.
        let raw = m.die_cost_usd(753.0);
        assert!((raw - 134.0).abs() < 4.0, "raw = {raw}");
        let million = m.cost_for_good_dies_usd(753.0, 1_000_000) / 1e6;
        assert!((million - 350.0).abs() < 15.0, "1M good dies = {million}M");
    }

    #[test]
    fn table4_non_compliant_die_cost() {
        let m = CostModel::n7();
        let raw = m.die_cost_usd(523.0);
        assert!((raw - 88.0).abs() < 4.0, "raw = {raw}");
        let million = m.cost_for_good_dies_usd(523.0, 1_000_000) / 1e6;
        assert!((million - 177.0).abs() < 10.0, "1M good dies = {million}M");
    }

    #[test]
    fn yield_decreases_with_area() {
        let m = CostModel::n7();
        assert!(m.die_yield(100.0) > m.die_yield(400.0));
        assert!(m.die_yield(400.0) > m.die_yield(860.0));
    }

    #[test]
    fn yield_models_agree_at_zero_defects() {
        for model in [YieldModel::Seeds, YieldModel::Murphy, YieldModel::NegativeBinomial] {
            assert!((model.die_yield(800.0, 0.0) - 1.0).abs() < 1e-12);
            assert!((model.die_yield(0.0, 0.2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn yield_models_are_ordered_seeds_most_pessimistic() {
        // For the same A·D0, Seeds < NegBin(α=2) and Seeds < Murphy.
        let (a, d0) = (800.0, 0.13);
        let seeds = YieldModel::Seeds.die_yield(a, d0);
        let murphy = YieldModel::Murphy.die_yield(a, d0);
        let nb = YieldModel::NegativeBinomial.die_yield(a, d0);
        assert!(seeds < murphy);
        assert!(seeds < nb);
        assert!(seeds > 0.0 && nb < 1.0);
    }

    #[test]
    fn dies_per_wafer_decreases_with_area() {
        let m = CostModel::n7();
        assert!(m.dies_per_wafer(100.0) > m.dies_per_wafer(500.0));
        assert!(m.dies_per_wafer(500.0) > m.dies_per_wafer(860.0));
    }

    #[test]
    fn oversized_die_costs_infinite() {
        let m = CostModel::n7();
        assert_eq!(m.dies_per_wafer(200_000.0), 0.0);
        assert!(m.die_cost_usd(200_000.0).is_infinite());
    }

    #[test]
    fn good_die_cost_exceeds_raw_cost() {
        let m = CostModel::n7();
        assert!(m.good_die_cost_usd(753.0) > m.die_cost_usd(753.0));
    }
}
