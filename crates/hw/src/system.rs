//! Multi-device system configuration.
//!
//! The paper evaluates LLM inference on a 4-device tensor-parallel node
//! (the standard LLMCompass setup for GPT-3-class models), with devices
//! connected through their device-to-device PHYs in a ring.

use crate::config::DeviceConfig;
use crate::error::HwError;
use std::sync::Arc;

/// Interconnect topology between devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Topology {
    /// Ring: each device talks to two neighbours; all-reduce uses the
    /// standard `2·(n−1)/n` ring algorithm.
    #[default]
    Ring,
    /// Fully connected (switch-based, NVSwitch-like): all-reduce still
    /// moves `2·(n−1)/n` of the data but uses half the latency steps.
    FullyConnected,
}

/// A tensor-parallel inference node: `device_count` copies of one device.
///
/// # Example
///
/// ```
/// use acs_hw::{DeviceConfig, SystemConfig};
///
/// let node = SystemConfig::new(DeviceConfig::a100_like(), 4)?;
/// assert_eq!(node.device_count(), 4);
/// assert!(node.aggregate_tpp().0 > 4.0 * 4900.0);
/// # Ok::<(), acs_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    // Shared rather than owned: sweeps build one `SystemConfig` per
    // evaluated point, and the device description (strings, nested
    // structs) dominates its size. `Arc` makes `SystemConfig::shared` and
    // `Clone` pointer-cheap; `PartialEq` still compares the pointee.
    device: Arc<DeviceConfig>,
    device_count: u32,
    topology: Topology,
}

impl SystemConfig {
    /// Build a system of `device_count` identical devices in a ring.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] if `device_count` is zero.
    pub fn new(device: DeviceConfig, device_count: u32) -> Result<Self, HwError> {
        Self::shared(Arc::new(device), device_count)
    }

    /// [`SystemConfig::new`] over an already-shared device, for hot paths
    /// that evaluate one device under many system shapes (or many devices
    /// behind one sweep) without cloning the configuration per point.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] if `device_count` is zero.
    pub fn shared(device: Arc<DeviceConfig>, device_count: u32) -> Result<Self, HwError> {
        if device_count == 0 {
            return Err(HwError::InvalidConfig {
                field: "device_count",
                reason: "must be nonzero".to_owned(),
            });
        }
        Ok(SystemConfig { device, device_count, topology: Topology::Ring })
    }

    /// The paper's evaluation node: four devices, ring-connected.
    ///
    /// # Errors
    ///
    /// Never fails for a valid device; the `Result` mirrors [`Self::new`].
    pub fn quad(device: DeviceConfig) -> Result<Self, HwError> {
        Self::new(device, 4)
    }

    /// A single-device "node" — infallible, since a device count of one is
    /// always valid. Used by the pipeline-parallel mapping, which prices
    /// layers on one device at a time.
    #[must_use]
    pub fn single(device: DeviceConfig) -> Self {
        SystemConfig { device: Arc::new(device), device_count: 1, topology: Topology::Ring }
    }

    /// The per-device configuration.
    #[must_use]
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Number of devices (the tensor-parallel degree).
    #[must_use]
    pub fn device_count(&self) -> u32 {
        self.device_count
    }

    /// Interconnect topology.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Set the topology (builder-style).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Aggregate TPP across all devices. Note the ACR aggregates TPP over
    /// dies in a *package*; separate devices in a node are classified
    /// individually, so policy checks use [`DeviceConfig::tpp`], not this.
    #[must_use]
    pub fn aggregate_tpp(&self) -> crate::Tpp {
        crate::Tpp(self.device.tpp().0 * f64::from(self.device_count))
    }

    /// Aggregate HBM bandwidth across devices in GB/s.
    #[must_use]
    pub fn aggregate_hbm_gb_s(&self) -> f64 {
        self.device.hbm().bandwidth_gb_s * f64::from(self.device_count)
    }

    /// Aggregate HBM capacity across devices in GiB.
    #[must_use]
    pub fn aggregate_hbm_capacity_gib(&self) -> f64 {
        self.device.hbm().capacity_gib * f64::from(self.device_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_builds_four_devices() {
        let s = SystemConfig::quad(DeviceConfig::a100_like()).unwrap();
        assert_eq!(s.device_count(), 4);
        assert_eq!(s.topology(), Topology::Ring);
    }

    #[test]
    fn zero_devices_rejected() {
        let err = SystemConfig::new(DeviceConfig::a100_like(), 0).unwrap_err();
        assert!(matches!(err, HwError::InvalidConfig { field: "device_count", .. }));
    }

    #[test]
    fn aggregates_scale_linearly() {
        let d = DeviceConfig::a100_like();
        let s1 = SystemConfig::new(d.clone(), 1).unwrap();
        let s4 = SystemConfig::new(d, 4).unwrap();
        assert!((s4.aggregate_tpp().0 - 4.0 * s1.aggregate_tpp().0).abs() < 1e-6);
        assert!((s4.aggregate_hbm_gb_s() - 4.0 * s1.aggregate_hbm_gb_s()).abs() < 1e-9);
        assert!(
            (s4.aggregate_hbm_capacity_gib() - 4.0 * s1.aggregate_hbm_capacity_gib()).abs()
                < 1e-9
        );
    }

    #[test]
    fn shared_reuses_one_device_allocation() {
        let device = Arc::new(DeviceConfig::a100_like());
        let s = SystemConfig::shared(Arc::clone(&device), 4).unwrap();
        assert_eq!(s.device(), &*device);
        assert_eq!(s, SystemConfig::quad(DeviceConfig::a100_like()).unwrap());
        assert!(SystemConfig::shared(device, 0).is_err());
    }

    #[test]
    fn with_topology_round_trips() {
        let s = SystemConfig::quad(DeviceConfig::a100_like())
            .unwrap()
            .with_topology(Topology::FullyConnected);
        assert_eq!(s.topology(), Topology::FullyConnected);
    }
}
