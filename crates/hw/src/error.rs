//! Error types for hardware configuration and modelling.

use std::error::Error;
use std::fmt;

/// Error raised when constructing or validating hardware descriptions.
///
/// # Example
///
/// ```
/// use acs_hw::{DeviceConfig, HwError};
///
/// let err = DeviceConfig::builder()
///     .core_count(0)
///     .build()
///     .unwrap_err();
/// assert!(matches!(err, HwError::InvalidConfig { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HwError {
    /// A configuration field holds a value outside its valid domain.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
    /// A derived quantity could not be computed from the given inputs
    /// (e.g. no core count satisfies a TPP target).
    Infeasible {
        /// Description of the infeasible request.
        reason: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::InvalidConfig { field, reason } => {
                write!(f, "invalid hardware configuration: {field}: {reason}")
            }
            HwError::Infeasible { reason } => write!(f, "infeasible request: {reason}"),
        }
    }
}

impl Error for HwError {}

impl From<HwError> for acs_errors::AcsError {
    fn from(e: HwError) -> Self {
        match e {
            HwError::InvalidConfig { field, reason } => {
                acs_errors::AcsError::InvalidConfig { field: field.to_owned(), reason }
            }
            HwError::Infeasible { reason } => acs_errors::AcsError::Infeasible { reason },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HwError::InvalidConfig {
            field: "core_count",
            reason: "must be nonzero".to_owned(),
        };
        let s = e.to_string();
        assert!(s.contains("core_count"));
        assert!(s.contains("nonzero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HwError>();
    }

    #[test]
    fn converts_into_workspace_taxonomy() {
        let e: acs_errors::AcsError = HwError::InvalidConfig {
            field: "core_count",
            reason: "must be nonzero".to_owned(),
        }
        .into();
        assert_eq!(e.kind(), "invalid_config");
        let e: acs_errors::AcsError =
            HwError::Infeasible { reason: "no fit".to_owned() }.into();
        assert_eq!(e.kind(), "infeasible");
    }
}
