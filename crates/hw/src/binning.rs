//! Die binning and salvage.
//!
//! §2.3: "Binning allows partially defective chips to be salvaged to be
//! reused in less powerful products" — the A800 can be built from A100
//! dies whose NVLink PHYs failed or were fused off, and the H20 disables
//! most of an H100-class die. This module models the economics: fatal
//! defects land on a die as a Poisson process; a die is sellable in a bin
//! if enough cores survive; salvage raises the effective revenue per
//! wafer and lowers the cost of regulation-specific parts.

use crate::config::DeviceConfig;
use crate::cost::CostModel;

/// A product bin: a die qualifies when at least `min_good_cores` of the
/// physical cores are defect-free.
#[derive(Debug, Clone, PartialEq)]
pub struct Bin {
    /// Bin name (e.g. `"A100 (108/128 cores)"`).
    pub name: String,
    /// Cores that must be functional.
    pub min_good_cores: u32,
}

impl Bin {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, min_good_cores: u32) -> Self {
        Bin { name: name.into(), min_good_cores }
    }
}

/// Poisson probability of exactly `k` events at mean `lambda`.
fn poisson_pmf(k: u32, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let mut log_p = -lambda + f64::from(k) * lambda.ln();
    for i in 1..=k {
        log_p -= f64::from(i).ln();
    }
    log_p.exp()
}

/// Binning analysis of one physical die design.
///
/// # Example
///
/// ```
/// use acs_hw::{AreaModel, BinningModel, CostModel, DeviceConfig};
///
/// let die = DeviceConfig::builder().core_count(128).l2_mib(48).build()?;
/// let area = AreaModel::n7().die_area(&die);
/// let model = BinningModel::for_device(&die, &area);
/// let cost = CostModel::n7();
/// // Selling at 108/128 cores salvages dies a perfect-die bin scraps.
/// assert!(model.bin_yield(&cost, 108) > model.bin_yield(&cost, 128));
/// # Ok::<(), acs_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinningModel {
    /// Physical cores on the die.
    pub physical_cores: u32,
    /// Total die area in mm².
    pub die_area_mm2: f64,
    /// Fraction of the die area occupied by core logic (defects elsewhere
    /// are assumed fatal; defects in cores disable one core each).
    pub core_area_fraction: f64,
}

impl BinningModel {
    /// Build from a device configuration and its modelled area breakdown.
    #[must_use]
    pub fn for_device(device: &DeviceConfig, area: &crate::AreaBreakdown) -> Self {
        let core_area =
            area.systolic + area.vector + area.l1 + area.control;
        BinningModel {
            physical_cores: device.core_count(),
            die_area_mm2: area.total_mm2(),
            core_area_fraction: (core_area / area.total_mm2()).clamp(0.0, 1.0),
        }
    }

    /// Expected fatal defects per die at `d0_per_cm2`.
    #[must_use]
    pub fn defects_per_die(&self, cost_model: &CostModel) -> f64 {
        self.die_area_mm2 / 100.0 * cost_model.defect_density_per_cm2
    }

    /// Probability that a die has at least `good_cores` functional cores
    /// and no fatal defect outside the core array.
    ///
    /// Core-area defects each disable one distinct core (pessimistically,
    /// clustered double-hits are counted as separate kills); uncore
    /// defects are fatal.
    #[must_use]
    pub fn bin_yield(&self, cost_model: &CostModel, good_cores: u32) -> f64 {
        if good_cores > self.physical_cores {
            return 0.0;
        }
        let lambda = self.defects_per_die(cost_model);
        let lambda_core = lambda * self.core_area_fraction;
        let lambda_uncore = lambda - lambda_core;
        let uncore_ok = (-lambda_uncore).exp();
        let max_kills = self.physical_cores - good_cores;
        let core_ok: f64 = (0..=max_kills).map(|k| poisson_pmf(k, lambda_core)).sum();
        uncore_ok * core_ok
    }

    /// Fraction of dies that qualify for each bin *exclusively*, assigning
    /// every die to the highest bin it meets. `bins` must be sorted from
    /// most to least demanding. The last element of the returned vector is
    /// the scrap fraction.
    #[must_use]
    pub fn bin_split(&self, cost_model: &CostModel, bins: &[Bin]) -> Vec<f64> {
        let mut out = Vec::with_capacity(bins.len() + 1);
        let mut prev = 0.0;
        for bin in bins {
            let cumulative = self.bin_yield(cost_model, bin.min_good_cores);
            out.push((cumulative - prev).max(0.0));
            prev = cumulative;
        }
        out.push((1.0 - prev).max(0.0));
        out
    }

    /// Effective cost per *sellable* die when every bin is monetised,
    /// versus per perfect die only. Salvage is the ratio of the two.
    #[must_use]
    pub fn salvage_gain(&self, cost_model: &CostModel, bins: &[Bin]) -> f64 {
        let perfect = self.bin_yield(cost_model, self.physical_cores);
        let any: f64 = self
            .bin_yield(cost_model, bins.iter().map(|b| b.min_good_cores).min().unwrap_or(self.physical_cores));
        if perfect <= 0.0 {
            return f64::INFINITY;
        }
        any / perfect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaModel;

    fn ga100_like() -> (BinningModel, CostModel) {
        // The GA100 story: 128 physical cores, sold as 108-core A100s.
        let device = DeviceConfig::builder().core_count(128).l2_mib(48).build().unwrap();
        let area = AreaModel::n7().die_area(&device);
        (BinningModel::for_device(&device, &area), CostModel::n7())
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let total: f64 = (0..60).map(|k| poisson_pmf(k, 3.0)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
    }

    #[test]
    fn relaxed_bins_yield_more() {
        let (m, c) = ga100_like();
        let perfect = m.bin_yield(&c, 128);
        let a100 = m.bin_yield(&c, 108);
        let salvage = m.bin_yield(&c, 64);
        assert!(perfect < a100, "disabling cores salvages dies");
        assert!(a100 <= salvage, "relaxing further never hurts");
        assert!(salvage <= 1.0);
    }

    #[test]
    fn ga100_binning_explains_the_108_core_sku() {
        // Selling at 108/128 cores recovers a large majority of dies that
        // a perfect-die requirement would scrap.
        let (m, c) = ga100_like();
        let gain = m.salvage_gain(&c, &[Bin::new("A100", 108), Bin::new("A30", 56)]);
        assert!(gain > 1.5, "salvage gain = {gain}");
    }

    #[test]
    fn bin_split_partitions_probability() {
        let (m, c) = ga100_like();
        let bins = [Bin::new("full", 128), Bin::new("A100", 108), Bin::new("A30", 56)];
        let split = m.bin_split(&c, &bins);
        assert_eq!(split.len(), 4);
        let total: f64 = split.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(split.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // The full-core bin is the smallest of the sellable bins for a
        // die this large.
        assert!(split[0] < split[1] + split[2]);
    }

    #[test]
    fn impossible_bins_have_zero_yield() {
        let (m, c) = ga100_like();
        assert_eq!(m.bin_yield(&c, 129), 0.0);
    }
}
