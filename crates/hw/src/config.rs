//! The LLMCompass-style hardware template (Fig. 4 of the paper).
//!
//! A [`DeviceConfig`] describes one accelerator device: `core_count` cores,
//! each with `lanes_per_core` lanes sharing a private local (L1) buffer.
//! Each lane couples one systolic array ([`SystolicDims`]) with a vector
//! unit. Cores share a global (L2) buffer connected to off-chip HBM
//! ([`HbmConfig`]) and the device-to-device interconnect
//! ([`DevicePhyConfig`]).

use crate::error::HwError;
use crate::process::ProcessNode;
use crate::tpp::{PerfDensity, Tpp};
use std::fmt;

/// Numeric format the systolic arrays operate on.
///
/// TPP is calculated from the max `TOPS × bitwidth` product over supported
/// formats; the paper (and this reproduction) evaluates FP16 tensor math,
/// matching the NVIDIA A100's peak-TPP format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DataType {
    /// 4-bit integer (weight-only quantized serving).
    Int4,
    /// 8-bit integer / float formats.
    Int8,
    /// 8-bit floating point (E4M3/E5M2 family; same TPP width as int8).
    Fp8,
    /// IEEE half precision (the paper's evaluation format).
    Fp16,
    /// Single precision.
    Fp32,
}

impl DataType {
    /// Operand width in bits, the multiplier in `TPP = TOPS × bitwidth`.
    #[must_use]
    pub fn bit_width(self) -> u32 {
        match self {
            DataType::Int4 => 4,
            DataType::Int8 | DataType::Fp8 => 8,
            DataType::Fp16 => 16,
            DataType::Fp32 => 32,
        }
    }

    /// Operand size in bytes. Sub-byte formats round up to one byte:
    /// memory traffic stays byte-addressed, and int4's packing gains are
    /// accounted through `bit_width` (TPP), not through the byte model.
    #[must_use]
    pub fn bytes(self) -> u32 {
        self.bit_width().div_ceil(8)
    }

    /// Parse the lowercase name produced by `Display` (`"int4"`, `"int8"`,
    /// `"fp8"`, `"fp16"`, `"fp32"`).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] for any other string.
    pub fn parse(s: &str) -> Result<Self, HwError> {
        match s {
            "int4" => Ok(DataType::Int4),
            "int8" => Ok(DataType::Int8),
            "fp8" => Ok(DataType::Fp8),
            "fp16" => Ok(DataType::Fp16),
            "fp32" => Ok(DataType::Fp32),
            other => Err(HwError::InvalidConfig {
                field: "datatype",
                reason: format!("unknown datatype {other:?}"),
            }),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int4 => write!(f, "int4"),
            DataType::Int8 => write!(f, "int8"),
            DataType::Fp8 => write!(f, "fp8"),
            DataType::Fp16 => write!(f, "fp16"),
            DataType::Fp32 => write!(f, "fp32"),
        }
    }
}

/// Dimensions of one systolic array (MACs laid out `x × y`).
///
/// Each array retires `x · y` multiply-accumulates per cycle; the ACR
/// counts a fused multiply-accumulate as two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystolicDims {
    /// Rows (the dimension weights stream across).
    pub x: u32,
    /// Columns (the dimension outputs accumulate along).
    pub y: u32,
}

impl SystolicDims {
    /// A square `n × n` array.
    #[must_use]
    pub fn square(n: u32) -> Self {
        SystolicDims { x: n, y: n }
    }

    /// MAC units in the array (`x · y`).
    #[must_use]
    pub fn macs(self) -> u64 {
        u64::from(self.x) * u64::from(self.y)
    }
}

impl fmt::Display for SystolicDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.x, self.y)
    }
}

/// Off-chip HBM memory attached to the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmConfig {
    /// Total capacity in GiB.
    pub capacity_gib: f64,
    /// Aggregate bandwidth in GB/s (e.g. 2039 for the A100 80 GB).
    pub bandwidth_gb_s: f64,
}

impl HbmConfig {
    /// Convenience constructor.
    #[must_use]
    pub fn new(capacity_gib: f64, bandwidth_gb_s: f64) -> Self {
        HbmConfig { capacity_gib, bandwidth_gb_s }
    }

    /// Bandwidth in TB/s, the unit the paper's DSE tables use.
    #[must_use]
    pub fn bandwidth_tb_s(&self) -> f64 {
        self.bandwidth_gb_s / 1000.0
    }
}

/// Device-to-device interconnect PHYs.
///
/// `count × gb_s_per_phy` yields the *aggregate bidirectional* device
/// bandwidth, the quantity the October 2022 rule thresholds at 600 GB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePhyConfig {
    /// Number of device-to-device PHY blocks.
    pub count: u32,
    /// Aggregate bidirectional bandwidth per PHY in GB/s.
    pub gb_s_per_phy: f64,
}

impl DevicePhyConfig {
    /// Convenience constructor.
    #[must_use]
    pub fn new(count: u32, gb_s_per_phy: f64) -> Self {
        DevicePhyConfig { count, gb_s_per_phy }
    }

    /// Aggregate bidirectional device bandwidth in GB/s.
    #[must_use]
    pub fn total_gb_s(&self) -> f64 {
        f64::from(self.count) * self.gb_s_per_phy
    }

    /// Bandwidth available in one direction (half the aggregate),
    /// the figure a ring all-reduce is limited by.
    #[must_use]
    pub fn unidirectional_gb_s(&self) -> f64 {
        self.total_gb_s() / 2.0
    }
}

/// One accelerator device in the LLMCompass hardware template.
///
/// Construct with [`DeviceConfig::builder`] (validated) or start from the
/// calibrated [`DeviceConfig::a100_like`] preset and adjust fields through
/// the builder's setters.
///
/// # Example
///
/// ```
/// use acs_hw::{DeviceConfig, SystolicDims};
///
/// let device = DeviceConfig::builder()
///     .name("custom-4800")
///     .core_count(207)
///     .lanes_per_core(2)
///     .systolic(SystolicDims::square(16))
///     .build()?;
/// assert!(device.tpp().0 < 4800.0);
/// # Ok::<(), acs_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    name: String,
    frequency_ghz: f64,
    core_count: u32,
    lanes_per_core: u32,
    systolic: SystolicDims,
    vector_width: u32,
    l1_kib_per_core: u32,
    l2_mib: u32,
    hbm: HbmConfig,
    phy: DevicePhyConfig,
    process: ProcessNode,
    datatype: DataType,
}

impl DeviceConfig {
    /// Start building a device; defaults mirror [`DeviceConfig::a100_like`].
    #[must_use]
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder::new()
    }

    /// The calibrated model of an NVIDIA A100 80 GB SXM used throughout the
    /// paper as the restricted baseline: 108 cores × 4 lanes × 16×16 FP16
    /// systolic arrays at 1.41 GHz (TPP ≈ 4992), 192 KiB L1 per core,
    /// 40 MiB L2, 2 TB/s HBM, 600 GB/s NVLink-class device bandwidth.
    #[must_use]
    pub fn a100_like() -> Self {
        // The builder's defaults ARE the A100 preset and are valid by
        // construction, so the preset is taken directly rather than routed
        // through `build()` — library code must not be able to panic here.
        let mut b = DeviceConfigBuilder::new();
        b.name("modeled-A100");
        b.inner
    }

    /// Device name (for reports and CSV output).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Core clock in GHz.
    #[must_use]
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// Number of cores on the device.
    #[must_use]
    pub fn core_count(&self) -> u32 {
        self.core_count
    }

    /// Lanes per core (each lane = one systolic array + one vector unit).
    #[must_use]
    pub fn lanes_per_core(&self) -> u32 {
        self.lanes_per_core
    }

    /// Systolic array dimensions.
    #[must_use]
    pub fn systolic(&self) -> SystolicDims {
        self.systolic
    }

    /// Vector-unit width per lane, in FP32 ALUs.
    #[must_use]
    pub fn vector_width(&self) -> u32 {
        self.vector_width
    }

    /// Private local-buffer (L1) capacity per core in KiB, shared by the
    /// core's lanes.
    #[must_use]
    pub fn l1_kib_per_core(&self) -> u32 {
        self.l1_kib_per_core
    }

    /// Shared global-buffer (L2) capacity in MiB.
    #[must_use]
    pub fn l2_mib(&self) -> u32 {
        self.l2_mib
    }

    /// Off-chip HBM configuration.
    #[must_use]
    pub fn hbm(&self) -> HbmConfig {
        self.hbm
    }

    /// Device-to-device PHY configuration.
    #[must_use]
    pub fn phy(&self) -> DevicePhyConfig {
        self.phy
    }

    /// Manufacturing process node.
    #[must_use]
    pub fn process(&self) -> ProcessNode {
        self.process
    }

    /// Systolic-array numeric format (determines TPP bitwidth).
    #[must_use]
    pub fn datatype(&self) -> DataType {
        self.datatype
    }

    /// Total systolic-array MAC units on the device
    /// (`DIMX · DIMY · lanes/core · cores`, the left side of Eq. 1).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.systolic.macs() * u64::from(self.lanes_per_core) * u64::from(self.core_count)
    }

    /// Peak tensor throughput in TOPS (a fused MAC counts as 2 ops).
    #[must_use]
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.total_macs() as f64 * self.frequency_ghz * 1e9 / 1e12
    }

    /// Peak tensor throughput in FLOP/s.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.peak_tops() * 1e12
    }

    /// Peak vector-unit throughput in FLOP/s (one op per ALU per cycle).
    #[must_use]
    pub fn peak_vector_flops(&self) -> f64 {
        f64::from(self.vector_width)
            * f64::from(self.lanes_per_core)
            * f64::from(self.core_count)
            * self.frequency_ghz
            * 1e9
    }

    /// Total Processing Performance: `TOPS × bitwidth`.
    #[must_use]
    pub fn tpp(&self) -> Tpp {
        Tpp(self.peak_tops() * f64::from(self.datatype.bit_width()))
    }

    /// Performance density given a die area in mm² (TPP / mm²); returns
    /// `None` when the process is planar (the October 2023 rule excludes
    /// planar dies from applicable die area).
    #[must_use]
    pub fn performance_density(&self, die_area_mm2: f64) -> Option<PerfDensity> {
        if !self.process.is_non_planar() || die_area_mm2 <= 0.0 {
            return None;
        }
        Some(PerfDensity(self.tpp().0 / die_area_mm2))
    }

    /// Total on-chip SRAM (L1 across cores + L2) in MiB — the figure the
    /// paper's Table 4 power discussion quotes ("151 MB vs 52 MB").
    #[must_use]
    pub fn total_sram_mib(&self) -> f64 {
        f64::from(self.core_count) * f64::from(self.l1_kib_per_core) / 1024.0
            + f64::from(self.l2_mib)
    }

    /// Convert back into a builder to derive variants.
    #[must_use]
    pub fn to_builder(&self) -> DeviceConfigBuilder {
        DeviceConfigBuilder { inner: self.clone() }
    }
}

impl fmt::Display for DeviceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} cores x {} lanes x {} {} @ {:.2} GHz, L1 {} KiB, L2 {} MiB, HBM {:.1} TB/s, dev {:.0} GB/s]",
            self.name,
            self.core_count,
            self.lanes_per_core,
            self.systolic,
            self.datatype,
            self.frequency_ghz,
            self.l1_kib_per_core,
            self.l2_mib,
            self.hbm.bandwidth_tb_s(),
            self.phy.total_gb_s(),
        )
    }
}

/// Validated builder for [`DeviceConfig`].
///
/// All setters take and return `&mut self` so configuration composes in
/// one-liners or branching code; [`DeviceConfigBuilder::build`] validates.
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    inner: DeviceConfig,
}

impl Default for DeviceConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceConfigBuilder {
    /// A builder initialised to the A100-like preset.
    #[must_use]
    pub fn new() -> Self {
        DeviceConfigBuilder {
            inner: DeviceConfig {
                name: "unnamed".to_owned(),
                frequency_ghz: 1.41,
                core_count: 108,
                lanes_per_core: 4,
                systolic: SystolicDims::square(16),
                vector_width: 32,
                l1_kib_per_core: 192,
                l2_mib: 40,
                hbm: HbmConfig::new(80.0, 2000.0),
                phy: DevicePhyConfig::new(12, 50.0),
                process: ProcessNode::N7,
                datatype: DataType::Fp16,
            },
        }
    }

    /// Set the device name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.inner.name = name.into();
        self
    }

    /// Set the core clock in GHz.
    pub fn frequency_ghz(&mut self, f: f64) -> &mut Self {
        self.inner.frequency_ghz = f;
        self
    }

    /// Set the number of cores.
    pub fn core_count(&mut self, n: u32) -> &mut Self {
        self.inner.core_count = n;
        self
    }

    /// Set lanes per core.
    pub fn lanes_per_core(&mut self, n: u32) -> &mut Self {
        self.inner.lanes_per_core = n;
        self
    }

    /// Set systolic array dimensions.
    pub fn systolic(&mut self, dims: SystolicDims) -> &mut Self {
        self.inner.systolic = dims;
        self
    }

    /// Set vector width per lane (FP32 ALUs).
    pub fn vector_width(&mut self, n: u32) -> &mut Self {
        self.inner.vector_width = n;
        self
    }

    /// Set per-core L1 capacity in KiB.
    pub fn l1_kib_per_core(&mut self, kib: u32) -> &mut Self {
        self.inner.l1_kib_per_core = kib;
        self
    }

    /// Set shared L2 capacity in MiB.
    pub fn l2_mib(&mut self, mib: u32) -> &mut Self {
        self.inner.l2_mib = mib;
        self
    }

    /// Set the HBM configuration.
    pub fn hbm(&mut self, hbm: HbmConfig) -> &mut Self {
        self.inner.hbm = hbm;
        self
    }

    /// Set HBM bandwidth in TB/s, keeping capacity (the paper's sweeps vary
    /// bandwidth at fixed 80 GiB capacity).
    pub fn hbm_bandwidth_tb_s(&mut self, tb_s: f64) -> &mut Self {
        self.inner.hbm.bandwidth_gb_s = tb_s * 1000.0;
        self
    }

    /// Set the device-to-device PHY configuration.
    pub fn phy(&mut self, phy: DevicePhyConfig) -> &mut Self {
        self.inner.phy = phy;
        self
    }

    /// Set aggregate bidirectional device bandwidth in GB/s, keeping the
    /// PHY count and rescaling per-PHY bandwidth.
    pub fn device_bandwidth_gb_s(&mut self, gb_s: f64) -> &mut Self {
        let count = self.inner.phy.count.max(1);
        self.inner.phy = DevicePhyConfig::new(count, gb_s / f64::from(count));
        self
    }

    /// Set the process node.
    pub fn process(&mut self, p: ProcessNode) -> &mut Self {
        self.inner.process = p;
        self
    }

    /// Set the systolic-array numeric format.
    pub fn datatype(&mut self, d: DataType) -> &mut Self {
        self.inner.datatype = d;
        self
    }

    /// Validate and produce the device.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] if any field is zero, negative,
    /// or non-finite where that is meaningless (core count, lanes, systolic
    /// dims, frequency, buffer sizes, bandwidths).
    pub fn build(&self) -> Result<DeviceConfig, HwError> {
        let c = &self.inner;
        fn positive(field: &'static str, v: f64) -> Result<(), HwError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(HwError::InvalidConfig {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                })
            }
        }
        fn nonzero(field: &'static str, v: u32) -> Result<(), HwError> {
            if v > 0 {
                Ok(())
            } else {
                Err(HwError::InvalidConfig { field, reason: "must be nonzero".to_owned() })
            }
        }
        nonzero("core_count", c.core_count)?;
        nonzero("lanes_per_core", c.lanes_per_core)?;
        nonzero("systolic.x", c.systolic.x)?;
        nonzero("systolic.y", c.systolic.y)?;
        nonzero("vector_width", c.vector_width)?;
        nonzero("l1_kib_per_core", c.l1_kib_per_core)?;
        nonzero("l2_mib", c.l2_mib)?;
        nonzero("phy.count", c.phy.count)?;
        positive("frequency_ghz", c.frequency_ghz)?;
        positive("hbm.capacity_gib", c.hbm.capacity_gib)?;
        positive("hbm.bandwidth_gb_s", c.hbm.bandwidth_gb_s)?;
        positive("phy.gb_s_per_phy", c.phy.gb_s_per_phy)?;
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_preset_matches_public_tpp() {
        let a100 = DeviceConfig::a100_like();
        // 108 cores * 4 lanes * 256 MACs * 2 * 1.41 GHz = 311.9 TOPS
        assert!((a100.peak_tops() - 311.9).abs() < 1.0);
        // TPP = TOPS * 16 ≈ 4990 (paper: 4992)
        assert!((a100.tpp().0 - 4992.0).abs() < 25.0);
        assert!((a100.phy().total_gb_s() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn total_macs_follows_eq1() {
        let d = DeviceConfig::builder()
            .core_count(10)
            .lanes_per_core(2)
            .systolic(SystolicDims { x: 16, y: 32 })
            .build()
            .unwrap();
        assert_eq!(d.total_macs(), 16 * 32 * 2 * 10);
    }

    #[test]
    fn builder_rejects_zero_cores() {
        let err = DeviceConfig::builder().core_count(0).build().unwrap_err();
        assert!(matches!(err, HwError::InvalidConfig { field: "core_count", .. }));
    }

    #[test]
    fn builder_rejects_nonfinite_frequency() {
        let err = DeviceConfig::builder().frequency_ghz(f64::NAN).build().unwrap_err();
        assert!(matches!(err, HwError::InvalidConfig { field: "frequency_ghz", .. }));
    }

    #[test]
    fn device_bandwidth_setter_rescales_phys() {
        let d = DeviceConfig::builder().device_bandwidth_gb_s(400.0).build().unwrap();
        assert!((d.phy().total_gb_s() - 400.0).abs() < 1e-9);
        assert_eq!(d.phy().count, 12);
        assert!((d.phy().unidirectional_gb_s() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn performance_density_excludes_planar() {
        let finfet = DeviceConfig::a100_like();
        assert!(finfet.performance_density(826.0).is_some());
        let planar =
            finfet.to_builder().process(ProcessNode::N28).build().unwrap();
        assert_eq!(planar.performance_density(826.0), None);
    }

    #[test]
    fn a100_performance_density_matches_paper() {
        // Paper: A800 (same die) PD = 6.04 on the 826 mm2 GA100 die.
        let pd = DeviceConfig::a100_like().performance_density(826.0).unwrap();
        assert!((pd.0 - 6.04).abs() < 0.1, "pd = {}", pd.0);
    }

    #[test]
    fn total_sram_accounts_l1_and_l2() {
        let a100 = DeviceConfig::a100_like();
        // 108 * 192 KiB = 20.25 MiB, plus 40 MiB L2.
        assert!((a100.total_sram_mib() - 60.25).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_parameters() {
        let s = DeviceConfig::a100_like().to_string();
        assert!(s.contains("108 cores"));
        assert!(s.contains("16x16"));
    }

    #[test]
    fn to_builder_round_trips() {
        let a = DeviceConfig::a100_like();
        let b = a.to_builder().build().unwrap();
        assert_eq!(a, b);
    }
}
