//! JSON round-trip for [`DeviceConfig`].
//!
//! The sweep checkpoint format stores design points as JSONL, and the
//! fault-injection harness replays configurations from disk; both need a
//! faithful textual form of a device. The offline build has no `serde`,
//! so this module emits and parses [`acs_errors::json::Value`] trees
//! directly. Deserialisation always re-validates through
//! [`DeviceConfigBuilder::build`], so a hand-edited or corrupted document
//! cannot smuggle an invalid device into the pipeline.

use crate::config::{DataType, DeviceConfig, DevicePhyConfig, HbmConfig, SystolicDims};
use crate::process::ProcessNode;
use acs_errors::json::{self, object, Value};
use acs_errors::AcsError;

fn u32_member(v: &Value, key: &str) -> Result<u32, AcsError> {
    let n = v.require_u64(key)?;
    u32::try_from(n)
        .map_err(|_| AcsError::Json { reason: format!("member {key:?} overflows u32: {n}") })
}

impl DeviceConfig {
    /// Serialise to a JSON value. Infallible: a constructed `DeviceConfig`
    /// has passed validation, so every numeric field is finite.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        object(vec![
            ("name", Value::String(self.name().to_owned())),
            ("frequency_ghz", Value::Number(self.frequency_ghz())),
            ("core_count", Value::Number(f64::from(self.core_count()))),
            ("lanes_per_core", Value::Number(f64::from(self.lanes_per_core()))),
            (
                "systolic",
                object(vec![
                    ("x", Value::Number(f64::from(self.systolic().x))),
                    ("y", Value::Number(f64::from(self.systolic().y))),
                ]),
            ),
            ("vector_width", Value::Number(f64::from(self.vector_width()))),
            ("l1_kib_per_core", Value::Number(f64::from(self.l1_kib_per_core()))),
            ("l2_mib", Value::Number(f64::from(self.l2_mib()))),
            (
                "hbm",
                object(vec![
                    ("capacity_gib", Value::Number(self.hbm().capacity_gib)),
                    ("bandwidth_gb_s", Value::Number(self.hbm().bandwidth_gb_s)),
                ]),
            ),
            (
                "phy",
                object(vec![
                    ("count", Value::Number(f64::from(self.phy().count))),
                    ("gb_s_per_phy", Value::Number(self.phy().gb_s_per_phy)),
                ]),
            ),
            ("process", Value::String(self.process().to_string())),
            ("datatype", Value::String(self.datatype().to_string())),
        ])
    }

    /// Serialise to a compact JSON string (byte-deterministic).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Deserialise from a JSON value, re-validating every field.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] for shape mismatches (missing members,
    /// wrong types, u32 overflow) and [`AcsError::InvalidConfig`] when the
    /// document is well-formed but describes an invalid device.
    pub fn from_json_value(v: &Value) -> Result<Self, AcsError> {
        let systolic = v.require("systolic")?;
        let hbm = v.require("hbm")?;
        let phy = v.require("phy")?;
        let mut b = DeviceConfig::builder();
        b.name(v.require_str("name")?)
            .frequency_ghz(v.require_f64("frequency_ghz")?)
            .core_count(u32_member(v, "core_count")?)
            .lanes_per_core(u32_member(v, "lanes_per_core")?)
            .systolic(SystolicDims { x: u32_member(systolic, "x")?, y: u32_member(systolic, "y")? })
            .vector_width(u32_member(v, "vector_width")?)
            .l1_kib_per_core(u32_member(v, "l1_kib_per_core")?)
            .l2_mib(u32_member(v, "l2_mib")?)
            .hbm(HbmConfig::new(
                hbm.require_f64("capacity_gib")?,
                hbm.require_f64("bandwidth_gb_s")?,
            ))
            .phy(DevicePhyConfig::new(
                u32_member(phy, "count")?,
                phy.require_f64("gb_s_per_phy")?,
            ))
            .process(ProcessNode::parse(v.require_str("process")?)?)
            .datatype(DataType::parse(v.require_str("datatype")?)?);
        Ok(b.build()?)
    }

    /// Deserialise from a JSON string.
    ///
    /// # Errors
    ///
    /// As [`DeviceConfig::from_json_value`], plus [`AcsError::Json`] for
    /// malformed documents.
    pub fn from_json_str(s: &str) -> Result<Self, AcsError> {
        Self::from_json_value(&json::parse(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_round_trips_exactly() {
        let a = DeviceConfig::a100_like();
        let back = DeviceConfig::from_json_str(&a.to_json_string()).unwrap();
        assert_eq!(a, back);
        // Emission is byte-deterministic.
        assert_eq!(a.to_json_string(), back.to_json_string());
    }

    #[test]
    fn fractional_bandwidths_round_trip_bit_for_bit() {
        let mut b = DeviceConfig::builder();
        b.name("frac").hbm_bandwidth_tb_s(2.039).frequency_ghz(1.0 / 3.0);
        let d = b.build().unwrap();
        let back = DeviceConfig::from_json_str(&d.to_json_string()).unwrap();
        assert_eq!(d.hbm().bandwidth_gb_s.to_bits(), back.hbm().bandwidth_gb_s.to_bits());
        assert_eq!(d.frequency_ghz().to_bits(), back.frequency_ghz().to_bits());
    }

    #[test]
    fn missing_member_is_a_json_error() {
        let mut v = DeviceConfig::a100_like().to_json_value();
        if let Value::Object(members) = &mut v {
            members.retain(|(k, _)| k != "core_count");
        }
        let e = DeviceConfig::from_json_value(&v).unwrap_err();
        assert_eq!(e.kind(), "json");
        assert!(e.to_string().contains("core_count"));
    }

    #[test]
    fn invalid_field_value_is_rejected_by_validation() {
        let s = DeviceConfig::a100_like().to_json_string().replace("\"core_count\":108", "\"core_count\":0");
        let e = DeviceConfig::from_json_str(&s).unwrap_err();
        assert_eq!(e.kind(), "invalid_config");
    }

    #[test]
    fn unknown_process_and_datatype_are_rejected() {
        let base = DeviceConfig::a100_like().to_json_string();
        let e = DeviceConfig::from_json_str(&base.replace("\"7nm\"", "\"3nm\"")).unwrap_err();
        assert_eq!(e.kind(), "invalid_config");
        let e = DeviceConfig::from_json_str(&base.replace("\"fp16\"", "\"fp4\"")).unwrap_err();
        assert_eq!(e.kind(), "invalid_config");
        // The scenario dtypes round-trip.
        for dt in ["fp8", "int4"] {
            let d = DeviceConfig::from_json_str(&base.replace("\"fp16\"", &format!("{dt:?}")))
                .unwrap();
            assert_eq!(d.datatype().to_string(), dt);
        }
    }

    #[test]
    fn u32_overflow_is_a_json_error() {
        let s = DeviceConfig::a100_like()
            .to_json_string()
            .replace("\"core_count\":108", "\"core_count\":5000000000");
        let e = DeviceConfig::from_json_str(&s).unwrap_err();
        assert_eq!(e.kind(), "json");
    }

    #[test]
    fn malformed_document_is_a_json_error() {
        assert_eq!(DeviceConfig::from_json_str("{not json").unwrap_err().kind(), "json");
        assert_eq!(DeviceConfig::from_json_str("[1,2]").unwrap_err().kind(), "json");
    }
}
