//! Component-level die area model.
//!
//! The model sums per-component footprints — systolic-array MACs, vector
//! ALUs, L1/L2 SRAM, HBM PHYs, device-to-device PHYs, per-core/per-lane
//! control overhead, and a fixed die overhead — with coefficients
//! calibrated on TSMC 7 nm so that:
//!
//! * the paper's October-2022 GPT-3-optimised design (207 cores × 2 lanes,
//!   64 MiB L2, 3.2 TB/s HBM) lands at ≈ 856 mm²,
//! * the Table-4 PD-compliant 2400-TPP design (103 cores, 1 MiB L1/core,
//!   48 MiB L2) lands at ≈ 753 mm² and its non-compliant twin at ≈ 523 mm².
//!
//! Other nodes rescale the logic/SRAM components via
//! [`ProcessNode::density_scale`]; PHY area is assumed pad-limited and does
//! not scale.

use crate::config::DeviceConfig;
use crate::process::ProcessNode;

/// Per-component area coefficients (all mm², 7 nm reference).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Area of one FP16 systolic MAC unit.
    pub mac_mm2: f64,
    /// Area of one FP32 vector ALU.
    pub vector_alu_mm2: f64,
    /// L1 (local buffer) SRAM area per MiB, including peripherals.
    pub l1_mm2_per_mib: f64,
    /// L2 (global buffer) SRAM area per MiB (denser banking than L1).
    pub l2_mm2_per_mib: f64,
    /// HBM PHY + memory controller area per TB/s of bandwidth.
    pub hbm_phy_mm2_per_tb_s: f64,
    /// Device-to-device PHY area per GB/s of aggregate bandwidth.
    pub device_phy_mm2_per_gb_s: f64,
    /// Per-core control/scheduling overhead.
    pub core_overhead_mm2: f64,
    /// Per-lane control, register files, and load/store overhead.
    pub lane_overhead_mm2: f64,
    /// Fixed die overhead: crossbar, command processor, misc IP.
    pub fixed_mm2: f64,
}

impl AreaModel {
    /// The calibrated 7 nm model used throughout the reproduction.
    #[must_use]
    pub fn n7() -> Self {
        AreaModel {
            mac_mm2: 0.0025,
            vector_alu_mm2: 0.002,
            l1_mm2_per_mib: 2.4,
            l2_mm2_per_mib: 1.8,
            hbm_phy_mm2_per_tb_s: 25.0,
            device_phy_mm2_per_gb_s: 0.06,
            core_overhead_mm2: 0.05,
            lane_overhead_mm2: 0.39,
            fixed_mm2: 74.0,
        }
    }

    /// Compute the area breakdown of a device, rescaling logic and SRAM by
    /// the device's process node relative to the model's 7 nm reference.
    #[must_use]
    pub fn die_area(&self, device: &DeviceConfig) -> AreaBreakdown {
        let scale = ProcessNode::N7.density_scale() / device.process().density_scale();
        let lanes_total = f64::from(device.core_count()) * f64::from(device.lanes_per_core());
        let l1_mib =
            f64::from(device.core_count()) * f64::from(device.l1_kib_per_core()) / 1024.0;

        let systolic = device.total_macs() as f64 * self.mac_mm2 * scale;
        let vector =
            lanes_total * f64::from(device.vector_width()) * self.vector_alu_mm2 * scale;
        let l1 = l1_mib * self.l1_mm2_per_mib * scale;
        let l2 = f64::from(device.l2_mib()) * self.l2_mm2_per_mib * scale;
        let hbm_phy = device.hbm().bandwidth_tb_s() * self.hbm_phy_mm2_per_tb_s;
        let device_phy = device.phy().total_gb_s() * self.device_phy_mm2_per_gb_s;
        let control = (f64::from(device.core_count()) * self.core_overhead_mm2
            + lanes_total * self.lane_overhead_mm2)
            * scale;
        let fixed = self.fixed_mm2 * scale;

        AreaBreakdown { systolic, vector, l1, l2, hbm_phy, device_phy, control, fixed }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::n7()
    }
}

/// Per-component die area in mm².
///
/// # Example
///
/// ```
/// use acs_hw::{AreaModel, DeviceConfig};
///
/// let breakdown = AreaModel::n7().die_area(&DeviceConfig::a100_like());
/// assert!(breakdown.total_mm2() > breakdown.sram_mm2());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Systolic-array MAC area.
    pub systolic: f64,
    /// Vector-unit ALU area.
    pub vector: f64,
    /// L1 (local buffer) SRAM area.
    pub l1: f64,
    /// L2 (global buffer) SRAM area.
    pub l2: f64,
    /// HBM PHY + memory controller area.
    pub hbm_phy: f64,
    /// Device-to-device PHY area.
    pub device_phy: f64,
    /// Per-core and per-lane control overhead.
    pub control: f64,
    /// Fixed die overhead.
    pub fixed: f64,
}

impl AreaBreakdown {
    /// Total die area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.systolic
            + self.vector
            + self.l1
            + self.l2
            + self.hbm_phy
            + self.device_phy
            + self.control
            + self.fixed
    }

    /// On-die SRAM area (L1 + L2) in mm².
    #[must_use]
    pub fn sram_mm2(&self) -> f64 {
        self.l1 + self.l2
    }

    /// Whether the die fits under the single-die reticle limit
    /// ([`crate::RETICLE_LIMIT_MM2`]).
    #[must_use]
    pub fn within_reticle(&self) -> bool {
        self.total_mm2() <= crate::RETICLE_LIMIT_MM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, SystolicDims};

    fn design(
        cores: u32,
        lanes: u32,
        dims: u32,
        l1_kib: u32,
        l2_mib: u32,
        hbm_tb_s: f64,
    ) -> DeviceConfig {
        DeviceConfig::builder()
            .core_count(cores)
            .lanes_per_core(lanes)
            .systolic(SystolicDims::square(dims))
            .l1_kib_per_core(l1_kib)
            .l2_mib(l2_mib)
            .hbm_bandwidth_tb_s(hbm_tb_s)
            .build()
            .unwrap()
    }

    #[test]
    fn calibration_gpt3_optimised_oct2022_design() {
        // §4.2: 207 cores, 2 lanes, 64 MiB L2, 3.2 TB/s => 856 mm².
        let d = design(207, 2, 16, 192, 64, 3.2);
        let total = AreaModel::n7().die_area(&d).total_mm2();
        assert!((total - 856.0).abs() < 15.0, "total = {total}");
    }

    #[test]
    fn calibration_table4_pd_compliant_design() {
        // Table 4: 753 mm², 103 cores x 2 lanes, 1 MiB L1, 48 MiB L2.
        let d = design(103, 2, 16, 1024, 48, 3.2);
        let total = AreaModel::n7().die_area(&d).total_mm2();
        assert!((total - 753.0).abs() < 10.0, "total = {total}");
    }

    #[test]
    fn calibration_table4_non_compliant_design() {
        // Table 4: 523 mm², identical but 192 KiB L1 / 32 MiB L2.
        let d = design(103, 2, 16, 192, 32, 3.2);
        let total = AreaModel::n7().die_area(&d).total_mm2();
        assert!((total - 523.0).abs() < 10.0, "total = {total}");
    }

    #[test]
    fn table4_sram_capacity_ratio_matches_paper() {
        // "almost triple the floor planned SRAM area (151 MB vs 52 MB)".
        let compliant = design(103, 2, 16, 1024, 48, 3.2);
        let non = design(103, 2, 16, 192, 32, 3.2);
        assert!((compliant.total_sram_mib() - 151.0).abs() < 1.0);
        assert!((non.total_sram_mib() - 51.3).abs() < 1.0);
    }

    #[test]
    fn a100_like_fits_reticle() {
        let b = AreaModel::n7().die_area(&DeviceConfig::a100_like());
        assert!(b.within_reticle(), "area = {}", b.total_mm2());
        assert!(b.total_mm2() > 600.0);
    }

    #[test]
    fn bigger_l1_strictly_increases_area() {
        let small = design(108, 4, 16, 192, 40, 2.0);
        let big = design(108, 4, 16, 1024, 40, 2.0);
        let m = AreaModel::n7();
        assert!(m.die_area(&big).total_mm2() > m.die_area(&small).total_mm2());
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let b = AreaModel::n7().die_area(&DeviceConfig::a100_like());
        let sum = b.systolic + b.vector + b.l1 + b.l2 + b.hbm_phy + b.device_phy + b.control + b.fixed;
        assert!((sum - b.total_mm2()).abs() < 1e-9);
    }

    #[test]
    fn denser_process_shrinks_logic_but_not_phys() {
        let d7 = DeviceConfig::a100_like();
        let d5 = d7.to_builder().process(crate::ProcessNode::N5).build().unwrap();
        let m = AreaModel::n7();
        let b7 = m.die_area(&d7);
        let b5 = m.die_area(&d5);
        assert!(b5.systolic < b7.systolic);
        assert!(b5.l2 < b7.l2);
        assert!((b5.hbm_phy - b7.hbm_phy).abs() < 1e-12);
        assert!((b5.device_phy - b7.device_phy).abs() < 1e-12);
    }
}
