//! Device power model.
//!
//! §4.4 observes that the performance-density floor pushes designs toward
//! large SRAM arrays whose static and dynamic power raise operating costs.
//! This module makes that observation quantitative with an energy model in
//! the style of accelerator design studies: per-operation dynamic energies
//! for MACs, vector ALUs and SRAM accesses, per-bit DRAM/link energies,
//! and capacity-proportional SRAM leakage, on 7 nm-calibrated constants.

use crate::config::DeviceConfig;
use crate::process::ProcessNode;

/// Energy and leakage coefficients (7 nm reference).
///
/// # Example
///
/// ```
/// use acs_hw::{DeviceConfig, PowerModel};
///
/// let model = PowerModel::n7();
/// let a100 = DeviceConfig::a100_like();
/// let tdp = model.tdp_w(&a100);
/// assert!(tdp > 250.0 && tdp < 550.0, "SXM-class TDP, got {tdp} W");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Dynamic energy per FP16 MAC, picojoules.
    pub mac_pj: f64,
    /// Dynamic energy per FP32 vector op, picojoules.
    pub vector_op_pj: f64,
    /// Dynamic energy per byte of L1 access, picojoules.
    pub l1_pj_per_byte: f64,
    /// Dynamic energy per byte of L2 access, picojoules.
    pub l2_pj_per_byte: f64,
    /// Energy per byte of HBM access, picojoules (≈ 3.5 pJ/bit · 8).
    pub hbm_pj_per_byte: f64,
    /// Energy per byte over the device-to-device links, picojoules.
    pub link_pj_per_byte: f64,
    /// SRAM leakage per MiB, watts.
    pub sram_leakage_w_per_mib: f64,
    /// Per-core static power (clock tree, control), watts.
    pub core_static_w: f64,
    /// Fixed device static power (scheduler, IO, misc), watts.
    pub device_static_w: f64,
}

impl PowerModel {
    /// Calibrated 7 nm coefficients. The modeled A100 lands near its
    /// 400 W SXM TDP when fully busy.
    #[must_use]
    pub fn n7() -> Self {
        PowerModel {
            mac_pj: 0.8,
            vector_op_pj: 1.5,
            l1_pj_per_byte: 1.2,
            l2_pj_per_byte: 3.0,
            hbm_pj_per_byte: 28.0,
            link_pj_per_byte: 10.0,
            sram_leakage_w_per_mib: 0.25,
            core_static_w: 0.35,
            device_static_w: 25.0,
        }
    }

    /// Static (idle) power of a device in watts: SRAM leakage plus
    /// per-core and fixed components, rescaled by process.
    #[must_use]
    pub fn static_w(&self, device: &DeviceConfig) -> f64 {
        let scale = device.process().density_scale() / ProcessNode::N7.density_scale();
        // Leakage per transistor falls on newer nodes roughly with the
        // inverse of density improvement at iso-capacity; model it flat
        // per MiB and scale the logic terms mildly.
        let leakage = device.total_sram_mib() * self.sram_leakage_w_per_mib;
        let logic = f64::from(device.core_count()) * self.core_static_w / scale.max(0.5);
        leakage + logic + self.device_static_w
    }

    /// Peak dynamic power in watts when the systolic arrays, vector units
    /// and HBM run flat out (a TDP-style bound).
    #[must_use]
    pub fn peak_dynamic_w(&self, device: &DeviceConfig) -> f64 {
        let macs_per_s = device.peak_tops() / 2.0 * 1e12; // MACs/s
        let compute = macs_per_s * self.mac_pj * 1e-12;
        let vector = device.peak_vector_flops() * self.vector_op_pj * 1e-12;
        // Peak operand movement: every MAC reads ~1 byte from L1
        // (amortised by array reuse) and the HBM streams at full rate.
        let l1 = macs_per_s * 0.5 * self.l1_pj_per_byte * 1e-12;
        let l2 = device.hbm().bandwidth_gb_s * 1e9 * self.l2_pj_per_byte * 1e-12;
        let hbm = device.hbm().bandwidth_gb_s * 1e9 * self.hbm_pj_per_byte * 1e-12;
        let link = device.phy().total_gb_s() * 1e9 * self.link_pj_per_byte * 1e-12;
        compute + vector + l1 + l2 + hbm + link
    }

    /// TDP-style total: static + peak dynamic.
    #[must_use]
    pub fn tdp_w(&self, device: &DeviceConfig) -> f64 {
        self.static_w(device) + self.peak_dynamic_w(device)
    }

    /// Energy of an execution interval in joules, given the work actually
    /// performed: `macs` on the arrays, `vector_flops` on the vector
    /// units, `hbm_bytes` streamed, `link_bytes` over the PHYs, and the
    /// wall-clock `time_s` (which charges static power).
    #[must_use]
    pub fn interval_energy_j(
        &self,
        device: &DeviceConfig,
        macs: f64,
        vector_flops: f64,
        hbm_bytes: f64,
        link_bytes: f64,
        time_s: f64,
    ) -> f64 {
        let dynamic = macs * (self.mac_pj + 0.5 * self.l1_pj_per_byte) * 1e-12
            + vector_flops * self.vector_op_pj * 1e-12
            + hbm_bytes * (self.hbm_pj_per_byte + self.l2_pj_per_byte) * 1e-12
            + link_bytes * self.link_pj_per_byte * 1e-12;
        dynamic + self.static_w(device) * time_s.max(0.0)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::n7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn a100_tdp_is_in_the_sxm_ballpark() {
        let m = PowerModel::n7();
        let tdp = m.tdp_w(&DeviceConfig::a100_like());
        assert!(tdp > 250.0 && tdp < 550.0, "tdp = {tdp} W");
    }

    #[test]
    fn sram_heavy_designs_leak_more() {
        // §4.4: the PD-compliant design's ~3x SRAM raises static power.
        let m = PowerModel::n7();
        let lean = DeviceConfig::builder()
            .core_count(103)
            .lanes_per_core(2)
            .l1_kib_per_core(192)
            .l2_mib(32)
            .build()
            .unwrap();
        let fat = lean.to_builder().l1_kib_per_core(1024).l2_mib(48).build().unwrap();
        let lean_static = m.static_w(&lean);
        let fat_static = m.static_w(&fat);
        assert!(fat_static > lean_static);
        // The SRAM-leakage delta mirrors the ~100 MiB capacity delta.
        let delta = fat_static - lean_static;
        let expected = (fat.total_sram_mib() - lean.total_sram_mib()) * m.sram_leakage_w_per_mib;
        assert!((delta - expected).abs() < 1e-9);
    }

    #[test]
    fn peak_dynamic_scales_with_compute_and_bandwidth() {
        let m = PowerModel::n7();
        let base = DeviceConfig::a100_like();
        let more_cores = base.to_builder().core_count(216).build().unwrap();
        let more_bw = base.to_builder().hbm_bandwidth_tb_s(3.2).build().unwrap();
        assert!(m.peak_dynamic_w(&more_cores) > m.peak_dynamic_w(&base));
        assert!(m.peak_dynamic_w(&more_bw) > m.peak_dynamic_w(&base));
    }

    #[test]
    fn interval_energy_charges_static_power_over_time() {
        let m = PowerModel::n7();
        let d = DeviceConfig::a100_like();
        let idle_1ms = m.interval_energy_j(&d, 0.0, 0.0, 0.0, 0.0, 1e-3);
        let idle_2ms = m.interval_energy_j(&d, 0.0, 0.0, 0.0, 0.0, 2e-3);
        assert!((idle_2ms - 2.0 * idle_1ms).abs() < 1e-12);
        let busy = m.interval_energy_j(&d, 1e12, 1e10, 1e9, 1e8, 1e-3);
        assert!(busy > idle_1ms);
    }

    #[test]
    fn interval_energy_is_never_negative() {
        let m = PowerModel::n7();
        let d = DeviceConfig::a100_like();
        assert!(m.interval_energy_j(&d, 0.0, 0.0, 0.0, 0.0, -1.0) >= 0.0);
    }
}
