//! Hardware description, TPP arithmetic, and area/cost models for
//! accelerator design-space exploration under advanced computing sanctions.
//!
//! This crate provides the hardware substrate used throughout the
//! reproduction of *Chip Architectures Under Advanced Computing Sanctions*
//! (ISCA '25):
//!
//! * [`DeviceConfig`] — the LLMCompass-style hardware template: a device is
//!   a grid of cores, each core holds several lanes sharing a local (L1)
//!   buffer, and each lane couples a systolic array with a vector unit. The
//!   device also carries a shared global (L2) buffer, HBM, and
//!   device-to-device PHYs.
//! * [`tpp`] — Total Processing Performance arithmetic: peak TOPS, TPP
//!   (TOPS × bitwidth), performance density, and the inverse problem of
//!   sizing a device to sit just under a TPP threshold (Eq. 1 of the paper).
//! * [`area`] — a component-level die area model calibrated against the
//!   NVIDIA GA100 (≈ 826 mm²).
//! * [`cost`] — wafer economics: dies per wafer, defect-limited yield, and
//!   per-good-die silicon cost, calibrated against Table 4 of the paper.
//!
//! # Example
//!
//! ```
//! use acs_hw::{DeviceConfig, area::AreaModel, cost::CostModel};
//!
//! let a100 = DeviceConfig::a100_like();
//! let tpp = a100.tpp();
//! assert!((tpp.0 - 4992.0).abs() < 25.0, "modeled A100 TPP ≈ 4992");
//!
//! let area = AreaModel::n7().die_area(&a100);
//! let cost = CostModel::n7().die_cost_usd(area.total_mm2());
//! assert!(cost > 0.0);
//! ```

pub mod area;
pub mod binning;
pub mod chiplet;
pub mod config;
pub mod cost;
pub mod error;
pub mod power;
pub mod process;
pub mod serial;
pub mod system;
pub mod tpp;

pub use area::{AreaBreakdown, AreaModel};
pub use binning::{Bin, BinningModel};
pub use chiplet::{ChipletPackage, PackagingModel};
pub use power::PowerModel;
pub use config::{
    DataType, DeviceConfig, DeviceConfigBuilder, DevicePhyConfig, HbmConfig, SystolicDims,
};
pub use cost::{CostModel, YieldModel};
pub use error::HwError;
pub use process::ProcessNode;
pub use system::{SystemConfig, Topology};
pub use tpp::{PerfDensity, Tpp};

/// The single-die manufacturability ceiling imposed by current EUV
/// lithography (≈ 860 mm², §2.3 of the paper).
pub const RETICLE_LIMIT_MM2: f64 = 860.0;
