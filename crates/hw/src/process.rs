//! Semiconductor process nodes.
//!
//! The October 2023 Advanced Computing Rule's performance-density metric
//! only counts die area manufactured on a *non-planar* transistor
//! architecture (e.g. sub-16 nm FinFET). [`ProcessNode::is_non_planar`]
//! captures that distinction; [`ProcessNode::density_scale`] provides a
//! coarse logic-density factor relative to 7 nm used by the area model.

use std::fmt;

/// A named manufacturing process node.
///
/// # Example
///
/// ```
/// use acs_hw::ProcessNode;
///
/// assert!(ProcessNode::N7.is_non_planar());
/// assert!(!ProcessNode::N28.is_non_planar());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ProcessNode {
    /// TSMC 4/5 nm-class FinFET (e.g. AD102, H100's N4).
    N5,
    /// TSMC 7 nm-class FinFET (e.g. GA100, the paper's DSE baseline).
    N7,
    /// 12 nm-class FinFET (e.g. TU102).
    N12,
    /// 16 nm-class FinFET — the boundary node: FinFET, hence non-planar.
    N16,
    /// 28 nm-class planar.
    N28,
}

impl ProcessNode {
    /// Whether the node uses a non-planar transistor architecture
    /// (FinFET or GAA). Non-planar dies count toward "applicable die
    /// area" in the October 2023 performance-density calculation.
    #[must_use]
    pub fn is_non_planar(self) -> bool {
        !matches!(self, ProcessNode::N28)
    }

    /// Logic density relative to 7 nm (>1 is denser). Used to rescale the
    /// 7 nm-calibrated area model to other nodes.
    #[must_use]
    pub fn density_scale(self) -> f64 {
        match self {
            ProcessNode::N5 => 1.8,
            ProcessNode::N7 => 1.0,
            ProcessNode::N12 => 0.55,
            ProcessNode::N16 => 0.45,
            ProcessNode::N28 => 0.18,
        }
    }

    /// Parse the display form (`"7nm"`, `"28nm"`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::HwError::InvalidConfig`] for unknown nodes.
    pub fn parse(s: &str) -> Result<Self, crate::HwError> {
        match s {
            "5nm" => Ok(ProcessNode::N5),
            "7nm" => Ok(ProcessNode::N7),
            "12nm" => Ok(ProcessNode::N12),
            "16nm" => Ok(ProcessNode::N16),
            "28nm" => Ok(ProcessNode::N28),
            other => Err(crate::HwError::InvalidConfig {
                field: "process",
                reason: format!("unknown process node {other:?}"),
            }),
        }
    }

    /// Nominal drawn feature size in nanometres, for display purposes.
    #[must_use]
    pub fn nanometres(self) -> u32 {
        match self {
            ProcessNode::N5 => 5,
            ProcessNode::N7 => 7,
            ProcessNode::N12 => 12,
            ProcessNode::N16 => 16,
            ProcessNode::N28 => 28,
        }
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometres())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planarity_matches_finfet_boundary() {
        assert!(ProcessNode::N5.is_non_planar());
        assert!(ProcessNode::N7.is_non_planar());
        assert!(ProcessNode::N12.is_non_planar());
        assert!(ProcessNode::N16.is_non_planar());
        assert!(!ProcessNode::N28.is_non_planar());
    }

    #[test]
    fn density_monotonically_improves_with_newer_nodes() {
        let order = [
            ProcessNode::N28,
            ProcessNode::N16,
            ProcessNode::N12,
            ProcessNode::N7,
            ProcessNode::N5,
        ];
        for pair in order.windows(2) {
            assert!(pair[0].density_scale() < pair[1].density_scale());
        }
    }

    #[test]
    fn display_formats_as_nanometres() {
        assert_eq!(ProcessNode::N7.to_string(), "7nm");
        assert_eq!(ProcessNode::N28.to_string(), "28nm");
    }
}
