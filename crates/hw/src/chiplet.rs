//! Multi-chip-module (chiplet) packaging.
//!
//! §2.3/§2.5: the reticle caps single dies at ~860 mm², yet escaping the
//! October 2023 rule at 4799 TPP needs > 3000 mm² of die — *compliant
//! designs must be multi-chip modules*. Chiplets also improve yield
//! (smaller dies collect fewer fatal defects) at the cost of
//! die-to-die PHY area and packaging/assembly overheads.
//!
//! This module models that trade-off: split a logical device across `n`
//! compute chiplets, charge each chiplet a D2D PHY tax, price the package
//! as known-good-die cost plus an assembly cost with a package-level
//! assembly yield, and report the aggregate (package) metrics the ACR
//! actually regulates — TPP sums over all dies in a package.

use crate::area::AreaModel;
use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::error::HwError;

/// Packaging cost/overhead coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackagingModel {
    /// Die-to-die PHY area per chiplet per neighbour link, mm².
    pub d2d_phy_mm2: f64,
    /// Fixed assembly cost per package, USD (substrate, bonding).
    pub assembly_base_usd: f64,
    /// Incremental assembly cost per die, USD.
    pub assembly_per_die_usd: f64,
    /// Probability that bonding one die succeeds (package-level assembly
    /// yield is this to the power of the die count).
    pub bond_yield_per_die: f64,
}

impl PackagingModel {
    /// Advanced-packaging (CoWoS-class) cost assumptions.
    #[must_use]
    pub fn advanced() -> Self {
        PackagingModel {
            d2d_phy_mm2: 6.0,
            assembly_base_usd: 60.0,
            assembly_per_die_usd: 12.0,
            bond_yield_per_die: 0.99,
        }
    }
}

impl Default for PackagingModel {
    fn default() -> Self {
        Self::advanced()
    }
}

/// A packaged device: `chiplets` equal compute dies, each carrying
/// `1/chiplets` of the logical device plus a D2D PHY tax.
///
/// # Example
///
/// ```
/// use acs_hw::{AreaModel, ChipletPackage, DeviceConfig, PackagingModel};
///
/// let logical = DeviceConfig::a100_like();
/// let pkg = ChipletPackage::new(logical.clone(), 2, PackagingModel::advanced())?;
/// assert_eq!(pkg.chiplets(), 2);
/// // TPP aggregates over the package, as the rule prescribes.
/// assert!((pkg.package_tpp().0 - logical.tpp().0).abs() < 1e-9);
/// assert!(pkg.manufacturable(&AreaModel::n7()));
/// # Ok::<(), acs_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChipletPackage {
    logical: DeviceConfig,
    chiplets: u32,
    packaging: PackagingModel,
    /// Per-die configuration, computed (and validated) at construction so
    /// later accessors cannot fail.
    chiplet: DeviceConfig,
}

impl ChipletPackage {
    /// Split `logical` into `chiplets` identical dies. When the core
    /// count does not divide evenly, each die carries `ceil(cores / n)`
    /// physical cores and the excess is fused off on one die — the
    /// standard single-mask-set practice — so the package still enables
    /// exactly the logical core count.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] when `chiplets` is zero or
    /// exceeds the core count.
    pub fn new(
        logical: DeviceConfig,
        chiplets: u32,
        packaging: PackagingModel,
    ) -> Result<Self, HwError> {
        if chiplets == 0 {
            return Err(HwError::InvalidConfig {
                field: "chiplets",
                reason: "must be nonzero".to_owned(),
            });
        }
        if chiplets > logical.core_count() {
            return Err(HwError::InvalidConfig {
                field: "chiplets",
                reason: format!(
                    "cannot spread {} cores across {chiplets} chiplets",
                    logical.core_count()
                ),
            });
        }
        let n = chiplets;
        let share = |v: u32| (v / n).max(1);
        let chiplet = logical
            .to_builder()
            .name(format!("{}/{}x", logical.name(), n))
            .core_count(logical.core_count().div_ceil(n))
            .l2_mib(share(logical.l2_mib()))
            .hbm(crate::HbmConfig::new(
                logical.hbm().capacity_gib / f64::from(n),
                logical.hbm().bandwidth_gb_s / f64::from(n),
            ))
            .phy(crate::DevicePhyConfig::new(
                (logical.phy().count / n).max(1),
                logical.phy().gb_s_per_phy,
            ))
            .build()?;
        Ok(ChipletPackage { logical, chiplets, packaging, chiplet })
    }

    /// The logical (aggregate) device this package implements.
    #[must_use]
    pub fn logical(&self) -> &DeviceConfig {
        &self.logical
    }

    /// Number of compute chiplets.
    #[must_use]
    pub fn chiplets(&self) -> u32 {
        self.chiplets
    }

    /// One chiplet's physical configuration (cores rounded up to keep the
    /// dies identical; L2 and HBM/device PHYs split evenly). Computed and
    /// validated at [`ChipletPackage::new`] time.
    #[must_use]
    pub fn chiplet_config(&self) -> DeviceConfig {
        self.chiplet.clone()
    }

    /// Per-chiplet die area in mm²: the share of the logical device plus
    /// the die-to-die PHY tax (monolithic packages pay none).
    #[must_use]
    pub fn chiplet_area_mm2(&self, area_model: &AreaModel) -> f64 {
        let base = area_model.die_area(&self.chiplet_config()).total_mm2();
        let links = if self.chiplets == 1 { 0.0 } else { 2.0 };
        base + links * self.packaging.d2d_phy_mm2
    }

    /// Total silicon area across all dies — the "applicable die area" of
    /// the October 2023 performance-density calculation.
    #[must_use]
    pub fn package_area_mm2(&self, area_model: &AreaModel) -> f64 {
        f64::from(self.chiplets) * self.chiplet_area_mm2(area_model)
    }

    /// Package TPP: aggregated over *enabled* cores — exactly the logical
    /// device's TPP (fused-off remainder cores do not count, matching how
    /// vendors report capped SKUs).
    #[must_use]
    pub fn package_tpp(&self) -> crate::Tpp {
        self.logical.tpp()
    }

    /// Whether each chiplet fits the single-die reticle.
    #[must_use]
    pub fn manufacturable(&self, area_model: &AreaModel) -> bool {
        self.chiplet_area_mm2(area_model) <= crate::RETICLE_LIMIT_MM2
    }

    /// Package cost: known-good-die cost per chiplet, times the die count,
    /// plus assembly, divided by the package assembly yield.
    #[must_use]
    pub fn package_cost_usd(&self, area_model: &AreaModel, cost_model: &CostModel) -> f64 {
        let die = cost_model.good_die_cost_usd(self.chiplet_area_mm2(area_model));
        let n = f64::from(self.chiplets);
        let assembly =
            self.packaging.assembly_base_usd + n * self.packaging.assembly_per_die_usd;
        let assembly_yield = self.packaging.bond_yield_per_die.powf(n);
        (die * n + assembly) / assembly_yield.max(1e-9)
    }
}

/// The cheapest chiplet count (among `candidates`) for a logical device,
/// requiring each chiplet to fit the reticle. Returns the winning package,
/// or `None` when no candidate is manufacturable.
#[must_use]
pub fn cheapest_partition(
    logical: &DeviceConfig,
    candidates: &[u32],
    area_model: &AreaModel,
    cost_model: &CostModel,
    packaging: PackagingModel,
) -> Option<ChipletPackage> {
    candidates
        .iter()
        .filter_map(|&n| ChipletPackage::new(logical.clone(), n, packaging).ok())
        .filter(|p| p.manufacturable(area_model))
        .min_by(|a, b| {
            a.package_cost_usd(area_model, cost_model)
                .total_cmp(&b.package_cost_usd(area_model, cost_model))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystolicDims;

    fn big_logical() -> DeviceConfig {
        // A 4799-TPP-class device forced to > 3000 mm² by the PD floor:
        // lots of cores with fat caches.
        DeviceConfig::builder()
            .name("escape-4799")
            .core_count(412)
            .lanes_per_core(1)
            .systolic(SystolicDims::square(16))
            .l1_kib_per_core(1024)
            .l2_mib(80)
            .hbm_bandwidth_tb_s(3.2)
            .build()
            .unwrap()
    }

    #[test]
    fn monolithic_package_matches_logical_device() {
        let logical = DeviceConfig::a100_like();
        let pkg =
            ChipletPackage::new(logical.clone(), 1, PackagingModel::advanced()).unwrap();
        assert_eq!(pkg.chiplet_config().core_count(), logical.core_count());
        assert!((pkg.package_tpp().0 - logical.tpp().0).abs() < 1e-6);
        // No D2D tax for a single die.
        let am = AreaModel::n7();
        assert!(
            (pkg.package_area_mm2(&am) - am.die_area(&pkg.chiplet_config()).total_mm2()).abs()
                < 1e-9
        );
    }

    #[test]
    fn splitting_preserves_tpp_and_grows_area() {
        let logical = big_logical();
        let am = AreaModel::n7();
        let mono = ChipletPackage::new(logical.clone(), 1, PackagingModel::advanced()).unwrap();
        let quad = ChipletPackage::new(logical, 4, PackagingModel::advanced()).unwrap();
        assert!((mono.package_tpp().0 - quad.package_tpp().0).abs() < 1e-6);
        // D2D PHYs make the split package strictly larger in total.
        assert!(quad.package_area_mm2(&am) > mono.package_area_mm2(&am));
    }

    #[test]
    fn reticle_escape_requires_chiplets() {
        // §2.5: a 4799-TPP device escaping the rule needs > 3000 mm²,
        // which no single die can provide.
        let logical = big_logical();
        let am = AreaModel::n7();
        let mono = ChipletPackage::new(logical.clone(), 1, PackagingModel::advanced()).unwrap();
        assert!(!mono.manufacturable(&am), "monolithic escape die is impossible");
        let quad = ChipletPackage::new(logical, 4, PackagingModel::advanced()).unwrap();
        assert!(quad.manufacturable(&am), "four chiplets fit the reticle");
        assert!(quad.package_area_mm2(&am) > 1800.0);
    }

    #[test]
    fn chiplets_beat_an_equal_area_monolith_on_cost() {
        // Yield: four quarter-size dies are cheaper than one huge die of
        // the same silicon area, despite assembly overheads.
        let cm = CostModel::n7();
        let am = AreaModel::n7();
        let logical = DeviceConfig::builder()
            .core_count(256)
            .l1_kib_per_core(512)
            .l2_mib(64)
            .build()
            .unwrap();
        let mono = ChipletPackage::new(logical.clone(), 1, PackagingModel::advanced()).unwrap();
        let quad = ChipletPackage::new(logical, 4, PackagingModel::advanced()).unwrap();
        // Compare at package level; the monolith here is near the reticle.
        let mono_cost = mono.package_cost_usd(&am, &cm);
        let quad_cost = quad.package_cost_usd(&am, &cm);
        assert!(
            quad_cost < mono_cost,
            "quad ${quad_cost:.0} should undercut mono ${mono_cost:.0}"
        );
    }

    #[test]
    fn cheapest_partition_respects_reticle() {
        let am = AreaModel::n7();
        let cm = CostModel::n7();
        let best = cheapest_partition(
            &big_logical(),
            &[1, 2, 4, 8],
            &am,
            &cm,
            PackagingModel::advanced(),
        )
        .expect("some partition is manufacturable");
        assert!(best.chiplets() >= 2, "the monolith violates the reticle");
        assert!(best.manufacturable(&am));
    }

    #[test]
    fn uneven_splits_round_up_and_keep_logical_tpp() {
        // 108 cores across 5 dies: 22 physical cores per die, 110 built,
        // 2 fused off — package TPP stays the logical device's.
        let logical = DeviceConfig::a100_like();
        let pkg = ChipletPackage::new(logical.clone(), 5, PackagingModel::advanced()).unwrap();
        assert_eq!(pkg.chiplet_config().core_count(), 22);
        assert!((pkg.package_tpp().0 - logical.tpp().0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_splits_are_rejected() {
        let err0 =
            ChipletPackage::new(DeviceConfig::a100_like(), 0, PackagingModel::advanced())
                .unwrap_err();
        assert!(matches!(err0, HwError::InvalidConfig { field: "chiplets", .. }));
        let err_many =
            ChipletPackage::new(DeviceConfig::a100_like(), 1000, PackagingModel::advanced())
                .unwrap_err();
        assert!(matches!(err_many, HwError::InvalidConfig { field: "chiplets", .. }));
    }
}
