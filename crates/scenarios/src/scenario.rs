//! One named evaluation scenario and its JSON spec parser.

use acs_cache::CacheKey;
use acs_errors::json::Value;
use acs_errors::AcsError;
use acs_dse::DseRunner;
use acs_hw::{DataType, DeviceConfig};
use acs_llm::{
    pipeline_stage_layers, InferencePhase, LayerGraph, ModelConfig, WorkloadConfig,
};
use std::fmt;
use std::fmt::Write as _;

/// Hard ceiling on the expert count an inline scenario spec may request.
/// The expected-experts-touched model is exact at any count, but the
/// per-expert weight accounting scales arrays linearly — an adversarial
/// "expert-count bomb" in a request body must be a typed 400, not an
/// allocation stall.
pub const MAX_EXPERTS: u32 = 256;

/// Hard ceiling on the total device count (`tensor × expert × pipeline`)
/// a scenario may span — matches the 4096-point grid ceiling of the
/// serving layer.
pub const MAX_SCENARIO_DEVICES: u64 = 4096;

/// How a scenario maps its model across devices: a tensor-parallel node,
/// times an expert-parallel group, times a pipeline depth. The three
/// degrees compose hierarchically (each pipeline stage holds an
/// `expert × tensor` grid), which is how multi-node deployments escape
/// the 4-device node the paper sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelismScheme {
    /// Tensor-parallel degree (the simulated node width).
    pub tensor: u32,
    /// Expert-parallel group size (1 for dense models).
    pub expert: u32,
    /// Pipeline depth in stages.
    pub pipeline_stages: u32,
}

impl ParallelismScheme {
    /// A single 4-device tensor-parallel node — the paper's deployment.
    #[must_use]
    pub fn tensor4() -> Self {
        ParallelismScheme { tensor: 4, expert: 1, pipeline_stages: 1 }
    }

    /// Total devices the scheme spans.
    #[must_use]
    pub fn devices(&self) -> u64 {
        u64::from(self.tensor) * u64::from(self.expert) * u64::from(self.pipeline_stages)
    }
}

impl fmt::Display for ParallelismScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tp{}/ep{}/pp{}", self.tensor, self.expert, self.pipeline_stages)
    }
}

/// A named, validated, canonically digestable evaluation scenario.
///
/// Construction validates the full composition — the tensor degree
/// against the model's head count, the expert group against the expert
/// count (and against dense models), the pipeline depth against the
/// layer count — so a held `Scenario` can always build its runner and
/// lower its plans without further error paths.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    model: ModelConfig,
    workload: WorkloadConfig,
    dtype: DataType,
    parallelism: ParallelismScheme,
}

impl Scenario {
    /// Compose and validate a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when any degree of the
    /// parallelism scheme is degenerate for `model` (zero degrees, a
    /// tensor width that does not divide the head count, an expert group
    /// on a dense model or one that does not divide the expert count, a
    /// pipeline deeper than the layer stack), when the scheme exceeds
    /// [`MAX_SCENARIO_DEVICES`], or when the model's expert count
    /// exceeds [`MAX_EXPERTS`].
    pub fn new(
        name: impl Into<String>,
        model: ModelConfig,
        workload: WorkloadConfig,
        dtype: DataType,
        parallelism: ParallelismScheme,
    ) -> Result<Self, AcsError> {
        if let Some(moe) = model.moe() {
            if moe.num_experts > MAX_EXPERTS {
                return Err(AcsError::invalid_config(
                    "scenario.experts",
                    format!("{} experts exceed the {MAX_EXPERTS}-expert ceiling", moe.num_experts),
                ));
            }
        }
        if parallelism.devices() > MAX_SCENARIO_DEVICES {
            return Err(AcsError::invalid_config(
                "scenario.parallelism",
                format!(
                    "{parallelism} spans {} devices, above the {MAX_SCENARIO_DEVICES} ceiling",
                    parallelism.devices()
                ),
            ));
        }
        // The graph builder owns tensor/expert validation; lowering one
        // prefill graph here means a held scenario can never fail later.
        LayerGraph::try_build_parallel(
            &model,
            &workload,
            InferencePhase::Prefill,
            parallelism.tensor,
            parallelism.expert,
            u64::from(dtype.bytes()),
        )?;
        pipeline_stage_layers(model.num_layers(), parallelism.pipeline_stages)?;
        Ok(Scenario { name: name.into(), model, workload, dtype, parallelism })
    }

    /// Parse an inline JSON scenario spec.
    ///
    /// Recognised members: `model` (required: `gpt3_175b`, `gpt3_13b`,
    /// `llama3_8b`, `llama3_70b`, or `mixtral_8x7b`), `name` (defaults
    /// to a derived canonical name), `experts`/`top_k` (optional pair
    /// converting a dense base into a MoE), `dtype` (default `fp16`),
    /// `tensor` (default 4), `expert` (default 1), `pipeline_stages`
    /// (default 1), `batch`/`input_len`/`output_len` (default the
    /// paper's 32 × 2048 × 1024).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] for malformed members and
    /// [`AcsError::InvalidConfig`] for well-formed but degenerate specs
    /// (unknown model, expert bombs, zero-stage pipelines, …) — never
    /// panics, whatever the body says.
    pub fn from_json_value(v: &Value) -> Result<Self, AcsError> {
        let model_key = v.require_str("model")?;
        let mut model = match model_key {
            "gpt3_175b" => ModelConfig::gpt3_175b(),
            "gpt3_13b" => ModelConfig::gpt3_13b(),
            "llama3_8b" => ModelConfig::llama3_8b(),
            "llama3_70b" => ModelConfig::llama3_70b(),
            "mixtral_8x7b" => ModelConfig::mixtral_8x7b(),
            other => {
                return Err(AcsError::invalid_config(
                    "scenario.model",
                    format!(
                        "unknown model '{other}'; known: gpt3_175b, gpt3_13b, llama3_8b, \
                         llama3_70b, mixtral_8x7b"
                    ),
                ))
            }
        };
        let u32_member = |key: &str, default: u32| -> Result<u32, AcsError> {
            match v.get(key) {
                None => Ok(default),
                Some(m) => {
                    let raw = m.as_u64().ok_or_else(|| {
                        AcsError::Json { reason: format!("scenario member '{key}' must be a non-negative integer") }
                    })?;
                    u32::try_from(raw).map_err(|_| {
                        AcsError::invalid_config(
                            format!("scenario.{key}"),
                            format!("{raw} overflows the supported range"),
                        )
                    })
                }
            }
        };
        if v.get("experts").is_some() || v.get("top_k").is_some() {
            let experts = u32_member("experts", 0)?;
            let top_k = u32_member("top_k", 1)?;
            // Pre-validate what `with_moe` would panic on; the expert
            // ceiling itself is enforced by `Scenario::new`.
            if experts == 0 {
                return Err(AcsError::invalid_config("scenario.experts", "must be nonzero"));
            }
            if experts > MAX_EXPERTS {
                return Err(AcsError::invalid_config(
                    "scenario.experts",
                    format!("{experts} experts exceed the {MAX_EXPERTS}-expert ceiling"),
                ));
            }
            if top_k == 0 || top_k > experts {
                return Err(AcsError::invalid_config(
                    "scenario.top_k",
                    format!("must be in 1..={experts}, got {top_k}"),
                ));
            }
            model = model.with_moe(experts, top_k);
        }
        let dtype = match v.get("dtype") {
            None => DataType::Fp16,
            Some(m) => {
                let s = m
                    .as_str()
                    .ok_or_else(|| AcsError::Json { reason: "scenario member 'dtype' must be a string".into() })?;
                DataType::parse(s)?
            }
        };
        let parallelism = ParallelismScheme {
            tensor: u32_member("tensor", 4)?,
            expert: u32_member("expert", 1)?,
            pipeline_stages: u32_member("pipeline_stages", 1)?,
        };
        let default_workload = WorkloadConfig::paper_default();
        let u64_member = |key: &str, default: u64| -> Result<u64, AcsError> {
            match v.get(key) {
                None => Ok(default),
                Some(m) => m.as_u64().ok_or_else(|| {
                    AcsError::Json { reason: format!("scenario member '{key}' must be a non-negative integer") }
                }),
            }
        };
        let batch = u64_member("batch", default_workload.batch())?;
        let input_len = u64_member("input_len", default_workload.input_len())?;
        let output_len = u64_member("output_len", default_workload.output_len())?;
        if batch == 0 || input_len == 0 || output_len == 0 {
            return Err(AcsError::invalid_config(
                "scenario.workload",
                "batch, input_len, and output_len must be nonzero",
            ));
        }
        let workload = WorkloadConfig::new(batch, input_len, output_len);
        let name = match v.get("name") {
            None => derived_name(&model, dtype, parallelism),
            Some(m) => m
                .as_str()
                .ok_or_else(|| AcsError::Json { reason: "scenario member 'name' must be a string".into() })?
                .to_owned(),
        };
        Scenario::new(name, model, workload, dtype, parallelism)
    }

    /// The scenario's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model family.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The inference workload shape.
    #[must_use]
    pub fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    /// The operand datatype devices are screened at.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// The parallelism scheme.
    #[must_use]
    pub fn parallelism(&self) -> ParallelismScheme {
        self.parallelism
    }

    /// Whether the scenario's model routes through experts.
    #[must_use]
    pub fn is_moe(&self) -> bool {
        self.model.moe().is_some()
    }

    /// Activated-to-total parameter ratio: 1.0 for dense models, below
    /// 1.0 for MoE (the compute-vs-capacity wedge TPP ceilings miss).
    #[must_use]
    pub fn activation_ratio(&self) -> f64 {
        self.model.activated_params() as f64 / self.model.total_params() as f64
    }

    /// The canonical form covering every input of the scenario — the
    /// content-addressing contract all scenario-keyed caches share.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut key = String::with_capacity(160);
        let _ = write!(
            key,
            "scenario-v1|name={}|model={};layers={};d={};ffn={};heads={};kv={}",
            self.name,
            self.model.name(),
            self.model.num_layers(),
            self.model.d_model(),
            self.model.d_ffn(),
            self.model.num_heads(),
            self.model.num_kv_heads(),
        );
        if let Some(moe) = self.model.moe() {
            let _ = write!(key, ";moe={}x{}", moe.num_experts, moe.top_k);
        }
        let _ = write!(
            key,
            "|wl={}x{}x{}|dt={}|tp={}|ep={}|pp={}",
            self.workload.batch(),
            self.workload.input_len(),
            self.workload.output_len(),
            self.dtype,
            self.parallelism.tensor,
            self.parallelism.expert,
            self.parallelism.pipeline_stages,
        );
        key
    }

    /// FNV-1a digest of [`Scenario::canonical`].
    #[must_use]
    pub fn digest(&self) -> u64 {
        CacheKey::from_canonical(self.canonical()).digest()
    }

    /// A sweep runner configured for this scenario: the simulated node
    /// is the tensor-parallel group, plans lower under the scenario's
    /// expert-parallel degree, and every evaluated configuration is
    /// retyped to the scenario's operand format before pricing. Each
    /// scenario should hold on to ONE runner per service lifetime — the
    /// runner's factored leg tables are per-instance, so reuse across
    /// requests is what turns the scenario axis into table hits instead
    /// of re-priced graphs. (Pipeline stages are not part of the node
    /// the runner simulates; use `acs_sim::pipeline_latency`-style
    /// accounting — via the repro targets — for the pipeline dimension.)
    #[must_use]
    pub fn runner(&self) -> DseRunner {
        DseRunner::new(self.model.clone(), self.workload)
            .with_device_count(self.parallelism.tensor)
            .with_expert_parallel(self.parallelism.expert)
            .with_datatype(self.dtype)
    }

    /// Rebuild `config` with this scenario's operand datatype (the
    /// sweep lattice generates fp16 candidates; a scenario screens the
    /// same silicon at its own operand width).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] if the device fails
    /// re-validation — possible only for hand-built configs, not for
    /// lattice candidates.
    pub fn retype(&self, config: &DeviceConfig) -> Result<DeviceConfig, AcsError> {
        if config.datatype() == self.dtype {
            return Ok(config.clone());
        }
        Ok(config.to_builder().datatype(self.dtype).build()?)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} @ {} {}]", self.name, self.model.name(), self.dtype, self.parallelism)
    }
}

/// Canonical derived name for unnamed inline specs:
/// `<family>-<model>-<dtype>-tpT[-epE][-ppP]`.
fn derived_name(model: &ModelConfig, dtype: DataType, p: ParallelismScheme) -> String {
    let family = if model.moe().is_some() { "moe" } else { "dense" };
    let slug: String = model
        .name()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect();
    let mut name = format!("{family}-{slug}-{dtype}-tp{}", p.tensor);
    if p.expert > 1 {
        let _ = write!(name, "-ep{}", p.expert);
    }
    if p.pipeline_stages > 1 {
        let _ = write!(name, "-pp{}", p.pipeline_stages);
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_errors::json::parse;

    fn dense() -> Scenario {
        Scenario::new(
            "dense-test",
            ModelConfig::llama3_8b(),
            WorkloadConfig::paper_default(),
            DataType::Fp16,
            ParallelismScheme::tensor4(),
        )
        .unwrap()
    }

    #[test]
    fn moe_scenarios_compose_and_digest_stably() {
        let s = Scenario::new(
            "moe-test",
            ModelConfig::mixtral_8x7b(),
            WorkloadConfig::paper_default(),
            DataType::Fp8,
            ParallelismScheme { tensor: 4, expert: 4, pipeline_stages: 2 },
        )
        .unwrap();
        assert!(s.is_moe());
        assert_eq!(s.parallelism().devices(), 32);
        assert!(s.activation_ratio() < 0.6, "top-2 of 8 experts activates a minority");
        assert_eq!(s.digest(), s.clone().digest(), "digest is content-derived");
        assert!(s.canonical().contains("moe=8x2"));
        assert!(s.canonical().contains("dt=fp8"));
        // The runner carries the scheme into the evaluation stack.
        let runner = s.runner();
        assert_eq!(runner.expert_parallel(), 4);
    }

    #[test]
    fn degenerate_compositions_are_typed_errors() {
        let w = WorkloadConfig::paper_default();
        let bad = [
            // Expert group on a dense model.
            (ModelConfig::llama3_8b(), ParallelismScheme { tensor: 4, expert: 2, pipeline_stages: 1 }),
            // Tensor width not dividing the head count.
            (ModelConfig::llama3_8b(), ParallelismScheme { tensor: 5, expert: 1, pipeline_stages: 1 }),
            // Group not dividing the expert count.
            (ModelConfig::mixtral_8x7b(), ParallelismScheme { tensor: 4, expert: 3, pipeline_stages: 1 }),
            // Pipeline deeper than the layer stack.
            (ModelConfig::llama3_8b(), ParallelismScheme { tensor: 4, expert: 1, pipeline_stages: 33 }),
            // Zero-stage pipeline.
            (ModelConfig::llama3_8b(), ParallelismScheme { tensor: 4, expert: 1, pipeline_stages: 0 }),
        ];
        for (model, p) in bad {
            let err = Scenario::new("bad", model, w, DataType::Fp16, p).unwrap_err();
            assert_eq!(err.kind(), "invalid_config", "{p}");
        }
    }

    #[test]
    fn device_ceiling_rejects_fleet_scale_schemes() {
        let err = Scenario::new(
            "huge",
            ModelConfig::mixtral_8x7b(),
            WorkloadConfig::paper_default(),
            DataType::Fp16,
            ParallelismScheme { tensor: 32, expert: 8, pipeline_stages: 32 },
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid_config");
        assert!(err.to_string().contains("8192 devices"));
    }

    #[test]
    fn json_specs_parse_with_defaults_and_derive_names() {
        let v = parse(r#"{"model":"mixtral_8x7b","dtype":"fp8","expert":8}"#).unwrap();
        let s = Scenario::from_json_value(&v).unwrap();
        assert_eq!(s.name(), "moe-mixtral-8x7b-fp8-tp4-ep8");
        assert_eq!(s.dtype(), DataType::Fp8);
        assert_eq!(s.parallelism().tensor, 4, "tensor defaults to the paper's node");
        // A dense default spec matches the hand-built scenario.
        let d = Scenario::from_json_value(&parse(r#"{"model":"llama3_8b"}"#).unwrap()).unwrap();
        assert_eq!(d.model(), dense().model());
        assert_eq!(d.dtype(), DataType::Fp16);
        // An explicit MoE wrap of a dense base.
        let m = Scenario::from_json_value(
            &parse(r#"{"model":"llama3_8b","experts":4,"top_k":2,"expert":2}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(m.model().moe().map(|c| (c.num_experts, c.top_k)), Some((4, 2)));
    }

    #[test]
    fn hostile_json_specs_are_typed_errors_never_panics() {
        let cases = [
            (r#"{"model":"gpt5"}"#, "invalid_config"),
            (r#"{"dtype":"fp16"}"#, "json"),
            (r#"{"model":"llama3_8b","experts":100000,"top_k":1}"#, "invalid_config"),
            (r#"{"model":"llama3_8b","experts":0}"#, "invalid_config"),
            (r#"{"model":"llama3_8b","experts":4,"top_k":9}"#, "invalid_config"),
            (r#"{"model":"llama3_8b","pipeline_stages":0}"#, "invalid_config"),
            (r#"{"model":"llama3_8b","tensor":0}"#, "invalid_config"),
            (r#"{"model":"llama3_8b","dtype":"fp64"}"#, "invalid_config"),
            (r#"{"model":"llama3_8b","batch":0}"#, "invalid_config"),
            (r#"{"model":"llama3_8b","tensor":"four"}"#, "json"),
            (r#"{"model":"llama3_8b","experts":99999999999}"#, "invalid_config"),
        ];
        for (body, kind) in cases {
            let v = parse(body).unwrap();
            let err = Scenario::from_json_value(&v).unwrap_err();
            assert_eq!(err.kind(), kind, "{body}");
        }
    }

    #[test]
    fn retype_swaps_the_operand_width_only() {
        let s = Scenario::new(
            "int4",
            ModelConfig::llama3_8b(),
            WorkloadConfig::paper_default(),
            DataType::Int4,
            ParallelismScheme::tensor4(),
        )
        .unwrap();
        let base = DeviceConfig::a100_like();
        let retyped = s.retype(&base).unwrap();
        assert_eq!(retyped.datatype(), DataType::Int4);
        assert_eq!(retyped.core_count(), base.core_count());
        // Eq. 1 multiplies TOPS by the operand bit width, so 4-bit
        // operands shed 3/4 of the TPP at constant silicon — the
        // sanctions-evasion wedge: the same die screens lower.
        let ratio = retyped.tpp().0 / base.tpp().0;
        assert!((ratio - 0.25).abs() < 0.01, "int4/fp16 TPP ratio = {ratio}");
        // Same-dtype retyping is a clone.
        assert_eq!(dense().retype(&base).unwrap(), base);
    }
}
