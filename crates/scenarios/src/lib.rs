//! Named evaluation scenarios: a model family (dense or mixture-of-
//! experts), an operand datatype, and a parallelism scheme composed into
//! one canonically digestable unit the rest of the stack can sweep over.
//!
//! The paper's evaluation holds the workload frontend fixed (dense
//! GPT-3/Llama under 4-way tensor parallelism at fp16) and sweeps the
//! *hardware*. Sanctions analysis increasingly needs the transpose:
//! hold a candidate design and ask how the regulatory picture shifts as
//! the workload moves — to MoE models whose activated-parameter compute
//! escapes TPP-style ceilings, to fp8/int4 operands that shed TPP at
//! constant silicon, to expert/pipeline parallelism that sidesteps the
//! interconnect thresholds tensor parallelism is exposed to. A
//! [`Scenario`] names one such point; a [`ScenarioRegistry`] resolves
//! names (or inline JSON specs) into validated scenarios with typed
//! errors for every degenerate input.
//!
//! # Example
//!
//! ```
//! use acs_scenarios::ScenarioRegistry;
//!
//! let registry = ScenarioRegistry::builtin();
//! let moe = registry.get("moe-mixtral-fp16-tp4-ep4")?;
//! assert_eq!(moe.parallelism().devices(), 16);
//! let runner = moe.runner();
//! assert_eq!(runner.expert_parallel(), 4);
//! # Ok::<(), acs_errors::AcsError>(())
//! ```

pub mod registry;
pub mod scenario;

pub use registry::ScenarioRegistry;
pub use scenario::{ParallelismScheme, Scenario, MAX_EXPERTS, MAX_SCENARIO_DEVICES};
