//! The named-scenario registry.

use crate::scenario::{ParallelismScheme, Scenario};
use acs_errors::json::Value;
use acs_errors::AcsError;
use acs_hw::DataType;
use acs_llm::{ModelConfig, WorkloadConfig};
use std::collections::BTreeMap;

/// A name-keyed set of validated scenarios. Deterministically ordered
/// (BTreeMap), so listings and error messages are stable across runs.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    inner: BTreeMap<String, Scenario>,
}

impl ScenarioRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// The built-in scenarios every service exposes:
    ///
    /// | name | composition |
    /// |---|---|
    /// | `dense-llama3-fp16-tp4` | the stack's historical default — Llama 3 8B, fp16, one 4-device TP node |
    /// | `dense-gpt3-fp16-tp4` | the paper's GPT-3 175B evaluation point |
    /// | `dense-llama3-70b-int4-tp8-pp4` | 4-bit serving of a 70B dense model over 32 devices |
    /// | `moe-mixtral-fp16-tp4-ep4` | Mixtral 8x7B, 4-way expert parallelism (16 devices) |
    /// | `moe-mixtral-fp8-tp4-ep8` | fp8 Mixtral with one expert per group (32 devices) |
    /// | `hier-mixtral-fp16-tp8-ep2-pp2` | hierarchical multi-node: 8 TP × 2 EP × 2 PP = 32 devices |
    ///
    /// `dense-llama3-fp16-tp4` composes exactly the model, workload,
    /// dtype, and node the pre-scenario serving stack hard-coded, so
    /// screening under it reproduces historical results bit for bit.
    #[must_use]
    pub fn builtin() -> Self {
        let paper = WorkloadConfig::paper_default();
        let mut registry = ScenarioRegistry::new();
        let entries = [
            Scenario::new(
                "dense-llama3-fp16-tp4",
                ModelConfig::llama3_8b(),
                paper,
                DataType::Fp16,
                ParallelismScheme::tensor4(),
            ),
            Scenario::new(
                "dense-gpt3-fp16-tp4",
                ModelConfig::gpt3_175b(),
                paper,
                DataType::Fp16,
                ParallelismScheme::tensor4(),
            ),
            Scenario::new(
                "dense-llama3-70b-int4-tp8-pp4",
                ModelConfig::llama3_70b(),
                paper,
                DataType::Int4,
                ParallelismScheme { tensor: 8, expert: 1, pipeline_stages: 4 },
            ),
            Scenario::new(
                "moe-mixtral-fp16-tp4-ep4",
                ModelConfig::mixtral_8x7b(),
                paper,
                DataType::Fp16,
                ParallelismScheme { tensor: 4, expert: 4, pipeline_stages: 1 },
            ),
            Scenario::new(
                "moe-mixtral-fp8-tp4-ep8",
                ModelConfig::mixtral_8x7b(),
                paper,
                DataType::Fp8,
                ParallelismScheme { tensor: 4, expert: 8, pipeline_stages: 1 },
            ),
            Scenario::new(
                "hier-mixtral-fp16-tp8-ep2-pp2",
                ModelConfig::mixtral_8x7b(),
                paper,
                DataType::Fp16,
                ParallelismScheme { tensor: 8, expert: 2, pipeline_stages: 2 },
            ),
        ];
        // Built-in scenarios are valid by construction; a constructor
        // error here would be a bug, and `builtin_registry_resolves_all_
        // documented_names` pins the full complement of six.
        for scenario in entries.into_iter().flatten() {
            registry.insert(scenario);
        }
        registry
    }

    /// Register (or replace) a scenario under its own name.
    pub fn insert(&mut self, scenario: Scenario) {
        self.inner.insert(scenario.name().to_owned(), scenario);
    }

    /// Look a scenario up by name.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] naming the known scenarios
    /// when `name` is not registered.
    pub fn get(&self, name: &str) -> Result<&Scenario, AcsError> {
        self.inner.get(name).ok_or_else(|| {
            AcsError::invalid_config(
                "scenario",
                format!("unknown scenario '{name}'; known: {}", self.names().join(", ")),
            )
        })
    }

    /// Resolve a JSON grid member: a string resolves against the
    /// registry, an object parses as an inline [`Scenario`] spec.
    ///
    /// # Errors
    ///
    /// See [`ScenarioRegistry::get`] and [`Scenario::from_json_value`].
    pub fn resolve(&self, v: &Value) -> Result<Scenario, AcsError> {
        match v {
            Value::String(name) => self.get(name).cloned(),
            Value::Object(_) => Scenario::from_json_value(v),
            _ => Err(AcsError::Json {
                reason: "a scenario must be a registered name or an inline spec object".into(),
            }),
        }
    }

    /// Registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.inner.keys().map(String::as_str).collect()
    }

    /// Iterate the registered scenarios in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.inner.values()
    }

    /// Number of registered scenarios.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_errors::json::parse;

    #[test]
    fn builtin_registry_resolves_all_documented_names() {
        let r = ScenarioRegistry::builtin();
        assert_eq!(r.len(), 6);
        for name in [
            "dense-llama3-fp16-tp4",
            "dense-gpt3-fp16-tp4",
            "dense-llama3-70b-int4-tp8-pp4",
            "moe-mixtral-fp16-tp4-ep4",
            "moe-mixtral-fp8-tp4-ep8",
            "hier-mixtral-fp16-tp8-ep2-pp2",
        ] {
            assert_eq!(r.get(name).unwrap().name(), name);
        }
        // The default scenario reproduces the historical serving stack.
        let default = r.get("dense-llama3-fp16-tp4").unwrap();
        assert_eq!(default.model().name(), "Llama 3 8B");
        assert_eq!(default.parallelism().devices(), 4);
        assert_eq!(default.runner().expert_parallel(), 1);
        // The hierarchical scenario escapes the 4-device node.
        assert_eq!(r.get("hier-mixtral-fp16-tp8-ep2-pp2").unwrap().parallelism().devices(), 32);
    }

    #[test]
    fn unknown_names_are_typed_errors_listing_alternatives() {
        let err = ScenarioRegistry::builtin().get("dense-gpt5").unwrap_err();
        assert_eq!(err.kind(), "invalid_config");
        assert!(err.to_string().contains("moe-mixtral-fp16-tp4-ep4"), "{err}");
    }

    #[test]
    fn resolve_accepts_names_and_inline_specs_only() {
        let r = ScenarioRegistry::builtin();
        let by_name = r.resolve(&parse(r#""dense-llama3-fp16-tp4""#).unwrap()).unwrap();
        assert_eq!(by_name.name(), "dense-llama3-fp16-tp4");
        let inline = r.resolve(&parse(r#"{"model":"llama3_8b","dtype":"int4"}"#).unwrap()).unwrap();
        assert_eq!(inline.dtype(), acs_hw::DataType::Int4);
        assert_eq!(r.resolve(&parse("7").unwrap()).unwrap_err().kind(), "json");
    }

    #[test]
    fn registered_digests_are_pairwise_distinct() {
        let r = ScenarioRegistry::builtin();
        let digests: Vec<u64> = r.iter().map(Scenario::digest).collect();
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), digests.len());
    }
}
