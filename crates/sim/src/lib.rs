//! Analytical performance simulator for LLM inference on systolic-array
//! accelerators.
//!
//! This is the reproduction's substitute for the LLMCompass framework the
//! paper evaluates with: a high-level, mechanism-faithful cost model that
//! prices each operator of a Transformer layer on the hardware template of
//! [`acs_hw`]:
//!
//! * **Matmuls** ([`matmul`]) map onto the systolic arrays with an L1
//!   capacity-driven tiling: larger local buffers allow taller activation
//!   panels, amortising the array's fill/drain pipeline overhead.
//!   DRAM traffic follows from L2-capacity-driven blocking.
//! * **Vector operators** ([`vector`]) are priced on the vector units with
//!   a roofline; their low arithmetic intensity makes them
//!   bandwidth-bound, with small intermediates forwarded through the L2.
//! * **Collectives** ([`collective`]) use a ring all-reduce across the
//!   device-to-device PHYs.
//!
//! The headline outputs are the paper's two metrics: time-to-first-token
//! (TTFT, the prefill latency of one layer) and time-between-tokens (TBT,
//! the per-token decode latency of one layer). Like the paper, one
//! representative layer is simulated (§3.2).
//!
//! # Example
//!
//! ```
//! use acs_hw::{DeviceConfig, SystemConfig};
//! use acs_llm::{ModelConfig, WorkloadConfig};
//! use acs_sim::Simulator;
//!
//! let node = SystemConfig::quad(DeviceConfig::a100_like())?;
//! let sim = Simulator::new(node);
//! let gpt3 = ModelConfig::gpt3_175b();
//! let work = WorkloadConfig::paper_default();
//!
//! let ttft_ms = sim.ttft_s(&gpt3, &work) * 1e3;
//! let tbt_ms = sim.tbt_s(&gpt3, &work) * 1e3;
//! assert!(ttft_ms > 100.0 && ttft_ms < 500.0, "per-layer prefill, ms: {ttft_ms}");
//! assert!(tbt_ms > 0.5 && tbt_ms < 3.0, "per-token decode, ms: {tbt_ms}");
//! # Ok::<(), acs_hw::HwError>(())
//! ```

pub mod collective;
pub mod energy;
pub mod latency;
pub mod legs;
pub mod matmul;
pub mod metrics;
pub mod parallelism;
pub mod params;
pub mod plan;
pub mod serving;
pub mod vector;

pub use energy::{energy_per_token_j, layer_energy, EnergyReport};
pub use latency::{Bound, LayerLatency, OpCost, Simulator};
pub use legs::{
    CombineProgram, CommKey, ComputeKey, ComputeLeg, FusedLegs, LegKeys, MemoryKey, MemoryLeg,
    PlanLegs,
};
pub use collective::{allreduce_cost, alltoall_cost, CollectiveCost};
pub use plan::{plan_digest, plan_digest_parallel, EvalPlans, LayerPlan, PlanStore};
pub use metrics::{decode_throughput_tokens_per_s, mfu, request_latency_s};
pub use parallelism::{
    mapping_latency, pipeline_latency, MappingLatency, Parallelism, PipelineLatency,
};
pub use params::SimParams;
pub use serving::{
    simulate_disaggregated, simulate_serving, simulate_serving_cached, ServingConfig,
    ServingMetrics, StepCostCache,
};
