//! Layer-level scheduling and the top-level [`Simulator`].

use crate::collective::{allreduce_cost, alltoall_cost};
use crate::matmul::matmul_cost;
use crate::params::SimParams;
use crate::plan::{LayerPlan, OpBytes};
use crate::vector::vector_cost;
use acs_errors::{guard, AcsError};
use acs_hw::SystemConfig;
use acs_llm::{InferencePhase, ModelConfig, Operator, WorkloadConfig};
use std::fmt;

/// Which resource an operator's latency is limited by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Bound {
    /// Systolic arrays / vector units.
    Compute,
    /// Off-chip memory bandwidth.
    Memory,
    /// Global-buffer port bandwidth.
    GlobalBuffer,
    /// Device-to-device interconnect.
    Interconnect,
    /// Per-operator launch overhead.
    Overhead,
}

/// Priced cost of one operator.
#[derive(Debug, Clone)]
pub struct OpCost {
    /// Operator name (from the layer graph).
    pub name: &'static str,
    /// Total latency contribution (s), including launch overhead.
    pub time_s: f64,
    /// Compute-phase time (s).
    pub compute_s: f64,
    /// DRAM-phase time (s).
    pub dram_s: f64,
    /// Global-buffer-phase time (s).
    pub l2_s: f64,
    /// Interconnect time (s); zero for non-collectives.
    pub comm_s: f64,
    /// Launch overhead (s).
    pub overhead_s: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
    /// The binding resource.
    pub bound: Bound,
}

impl OpCost {
    fn classify(&mut self) {
        let candidates = [
            (self.compute_s, Bound::Compute),
            (self.dram_s, Bound::Memory),
            (self.l2_s, Bound::GlobalBuffer),
            (self.comm_s, Bound::Interconnect),
            (self.overhead_s, Bound::Overhead),
        ];
        self.bound = candidates
            .into_iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, b)| b)
            .unwrap_or(Bound::Compute);
    }
}

/// Latency of one Transformer layer, with a per-operator breakdown.
#[derive(Debug, Clone)]
pub struct LayerLatency {
    ops: Vec<OpCost>,
    phase: InferencePhase,
}

impl LayerLatency {
    /// Total layer latency in seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.ops.iter().map(|o| o.time_s).sum()
    }

    /// Per-operator costs in execution order.
    #[must_use]
    pub fn ops(&self) -> &[OpCost] {
        &self.ops
    }

    /// The phase this latency describes.
    #[must_use]
    pub fn phase(&self) -> InferencePhase {
        self.phase
    }

    /// Seconds spent in operators bound by `bound`.
    #[must_use]
    pub fn time_bound_by(&self, bound: Bound) -> f64 {
        self.ops.iter().filter(|o| o.bound == bound).map(|o| o.time_s).sum()
    }

    /// Total DRAM bytes moved by the layer (one device).
    #[must_use]
    pub fn dram_bytes(&self) -> f64 {
        self.ops.iter().map(|o| o.dram_bytes).sum()
    }

    /// The single most expensive operator.
    #[must_use]
    pub fn slowest_op(&self) -> Option<&OpCost> {
        self.ops.iter().max_by(|a, b| a.time_s.total_cmp(&b.time_s))
    }
}

impl fmt::Display for LayerLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} layer: {:.3} ms", self.phase, self.total_s() * 1e3)?;
        for op in &self.ops {
            writeln!(
                f,
                "  {:<16} {:>9.1} us  ({:?}-bound)",
                op.name,
                op.time_s * 1e6,
                op.bound
            )?;
        }
        Ok(())
    }
}

/// The analytical LLM-inference simulator.
///
/// Prices one Transformer layer of a model on a tensor-parallel node; the
/// tensor-parallel degree is the node's device count.
///
/// # Example
///
/// ```
/// use acs_hw::{DeviceConfig, SystemConfig};
/// use acs_llm::{ModelConfig, WorkloadConfig};
/// use acs_sim::Simulator;
///
/// let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like())?);
/// let tbt = sim.tbt_s(&ModelConfig::gpt3_175b(), &WorkloadConfig::paper_default());
/// assert!(tbt > 0.0);
/// # Ok::<(), acs_hw::HwError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    system: SystemConfig,
    params: SimParams,
}

impl Simulator {
    /// Simulator with calibrated default parameters.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        Simulator { system, params: SimParams::calibrated() }
    }

    /// Simulator with explicit parameters.
    #[must_use]
    pub fn with_params(system: SystemConfig, params: SimParams) -> Self {
        Simulator { system, params }
    }

    /// The simulated node.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The calibration parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Price one layer of `model` under `phase`.
    ///
    /// Thin wrapper over [`Simulator::simulate_planned`]: it lowers a
    /// single-use [`LayerPlan`] and executes it, so the per-call API and
    /// the plan-reuse API share one pricing loop and cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if the node's device count is zero or does not divide the
    /// model's attention-head count (see [`acs_llm::LayerGraph::build`]);
    /// [`LayerPlan::build`] reports the same conditions as typed errors.
    #[must_use]
    pub fn simulate_layer(
        &self,
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
    ) -> LayerLatency {
        let plan = LayerPlan::of_unchecked(
            model,
            workload,
            phase,
            self.system.device_count(),
            self.system.device().datatype().bytes(),
        );
        self.simulate_planned(&plan)
    }

    /// Execute a prebuilt [`LayerPlan`]: price each operator on this
    /// node's device. This is the sweep hot path — the graph lowering and
    /// operand-size derivation were done once at plan-build time, so each
    /// call performs only the per-device cost arithmetic.
    ///
    /// The plan must have been built for this node's device count and
    /// operand dtype (checked in debug builds; the fallible
    /// [`Simulator::try_simulate_planned`] rejects mismatches as typed
    /// errors).
    #[must_use]
    pub fn simulate_planned(&self, plan: &LayerPlan) -> LayerLatency {
        debug_assert_eq!(plan.device_count(), self.system.device_count());
        debug_assert_eq!(plan.dtype_bytes(), self.system.device().datatype().bytes());
        let phase = plan.phase();
        let l2_use = self.l2_usable();
        let graph = plan.graph();
        let mut ops = Vec::with_capacity(graph.ops().len());
        for (op, bytes) in graph.ops().iter().zip(plan.op_bytes()) {
            let mut cost = self.price_op(op, *bytes, l2_use);
            cost.classify();
            ops.push(cost);
        }
        if acs_telemetry::enabled() {
            record_layer_telemetry(graph.ops(), &ops, phase);
        }
        LayerLatency { ops, phase }
    }

    /// Usable L2 bytes under the calibrated occupancy fraction.
    pub(crate) fn l2_usable(&self) -> f64 {
        f64::from(self.system.device().l2_mib()) * 1024.0 * 1024.0 * self.params.l2_usable_fraction
    }

    /// Price a single planned operator. Every execution mode — the
    /// per-operator breakdown of [`Simulator::simulate_planned`] and the
    /// total-only sweep path — routes through this one function, so their
    /// arithmetic cannot drift. `bound` is left at a placeholder; callers
    /// that report it run [`OpCost::classify`].
    fn price_op(&self, op: &Operator, bytes: OpBytes, l2_use: f64) -> OpCost {
        // Producer→consumer forwarding: a tensor of `bytes` survives in the
        // L2 between adjacent operators in proportion to the capacity share
        // it can occupy (half the usable L2, leaving room for blocking).
        let forward = |bytes: f64| -> f64 {
            if bytes <= 0.0 {
                1.0
            } else {
                (0.5 * l2_use / bytes).min(1.0)
            }
        };
        let device = self.system.device();
        match op {
            Operator::Matmul(m) => {
                let fin = forward(bytes.a);
                let fout = forward(bytes.out);
                let c = matmul_cost(m, device, &self.params, fin, fout);
                OpCost {
                    name: m.name,
                    time_s: c.time_s() + self.params.op_overhead_s,
                    compute_s: c.compute_s,
                    dram_s: c.dram_s,
                    l2_s: c.l2_s,
                    comm_s: 0.0,
                    overhead_s: self.params.op_overhead_s,
                    dram_bytes: c.dram_bytes,
                    bound: Bound::Compute,
                }
            }
            Operator::Vector(v) => {
                let f = forward(bytes.a);
                let c = vector_cost(v, device, &self.params, f);
                OpCost {
                    name: v.name,
                    time_s: c.time_s() + self.params.op_overhead_s,
                    compute_s: c.compute_s,
                    dram_s: c.dram_s,
                    l2_s: c.l2_s,
                    comm_s: 0.0,
                    overhead_s: self.params.op_overhead_s,
                    dram_bytes: c.dram_bytes,
                    bound: Bound::Compute,
                }
            }
            Operator::AllReduce(a) => {
                let c = allreduce_cost(a.bytes, &self.system, &self.params);
                OpCost {
                    name: a.name,
                    time_s: c.time_s() + self.params.op_overhead_s,
                    compute_s: 0.0,
                    dram_s: 0.0,
                    l2_s: 0.0,
                    comm_s: c.time_s(),
                    overhead_s: self.params.op_overhead_s,
                    dram_bytes: 0.0,
                    bound: Bound::Interconnect,
                }
            }
            Operator::AllToAll(a) => {
                let c = alltoall_cost(a.bytes, a.group, &self.system, &self.params);
                OpCost {
                    name: a.name,
                    time_s: c.time_s() + self.params.op_overhead_s,
                    compute_s: 0.0,
                    dram_s: 0.0,
                    l2_s: 0.0,
                    comm_s: c.time_s(),
                    overhead_s: self.params.op_overhead_s,
                    dram_bytes: 0.0,
                    bound: Bound::Interconnect,
                }
            }
            // `Operator` is non-exhaustive; unknown future operators
            // contribute only their launch overhead.
            _ => OpCost {
                name: op.name(),
                time_s: self.params.op_overhead_s,
                compute_s: 0.0,
                dram_s: 0.0,
                l2_s: 0.0,
                comm_s: 0.0,
                overhead_s: self.params.op_overhead_s,
                dram_bytes: 0.0,
                bound: Bound::Overhead,
            },
        }
    }

    /// Total-only planned execution: price every operator, enforce the
    /// numeric contract, and accumulate the layer total without
    /// materialising the per-operator breakdown. This is the sweep hot
    /// path — it performs no heap allocation while every metric is
    /// healthy. The accumulation order matches [`LayerLatency::total_s`]
    /// (left-to-right over the op list, from 0.0), so the result is
    /// bit-identical to the breakdown path, and telemetry class totals
    /// are accumulated inline so profiled sweeps stay within the
    /// overhead budget.
    fn checked_total_planned(&self, plan: &LayerPlan) -> Result<f64, AcsError> {
        self.check_plan(plan)?;
        let l2_use = self.l2_usable();
        let telemetry_on = acs_telemetry::enabled();
        let mut class_sums = [0.0f64; 4];
        let mut total = 0.0f64;
        for (op, bytes) in plan.graph().ops().iter().zip(plan.op_bytes()) {
            let cost = self.price_op(op, *bytes, l2_use);
            let ctx = || format!("simulator.{}", cost.name);
            guard::ensure_non_negative_with(ctx, "time_s", cost.time_s)?;
            guard::ensure_non_negative_with(ctx, "compute_s", cost.compute_s)?;
            guard::ensure_non_negative_with(ctx, "dram_s", cost.dram_s)?;
            guard::ensure_non_negative_with(ctx, "l2_s", cost.l2_s)?;
            guard::ensure_non_negative_with(ctx, "comm_s", cost.comm_s)?;
            guard::ensure_non_negative_with(ctx, "dram_bytes", cost.dram_bytes)?;
            if telemetry_on {
                if let Some(class) = op_class(op) {
                    class_sums[class] += cost.time_s;
                }
            }
            total += cost.time_s;
        }
        if telemetry_on {
            flush_layer_telemetry(&class_sums, plan.phase());
        }
        guard::ensure_finite("simulator.layer", "total_s", total)
    }

    /// Time-to-first-token: one layer's prefill latency (the paper's TTFT
    /// unit — one representative layer, §3.2).
    #[must_use]
    pub fn ttft_s(&self, model: &ModelConfig, workload: &WorkloadConfig) -> f64 {
        self.simulate_layer(model, workload, InferencePhase::Prefill).total_s()
    }

    /// Time-between-tokens: one layer's decode latency at a KV context of
    /// the input length.
    #[must_use]
    pub fn tbt_s(&self, model: &ModelConfig, workload: &WorkloadConfig) -> f64 {
        self.simulate_layer(model, workload, workload.decode_phase()).total_s()
    }

    /// Full-model TTFT (`per-layer × num_layers`), for end-to-end studies.
    #[must_use]
    pub fn full_model_ttft_s(&self, model: &ModelConfig, workload: &WorkloadConfig) -> f64 {
        self.ttft_s(model, workload) * f64::from(model.num_layers())
    }

    /// Full-model TBT (`per-layer × num_layers`).
    #[must_use]
    pub fn full_model_tbt_s(&self, model: &ModelConfig, workload: &WorkloadConfig) -> f64 {
        self.tbt_s(model, workload) * f64::from(model.num_layers())
    }

    /// Price one layer and enforce the simulator's numeric contract: every
    /// per-operator time and byte count must be finite and non-negative —
    /// a NaN or infinity produced anywhere inside the cost models surfaces
    /// here as a typed [`AcsError::NonFinite`] instead of propagating
    /// silently into sweep results. The DSE pipeline now reuses plans via
    /// [`Simulator::try_simulate_planned`]; this per-call variant (with
    /// its eager guard contexts) is kept as the legacy reference path the
    /// equivalence tests and the throughput benchmark compare against.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::NonFinite`] naming the offending operator and
    /// metric.
    pub fn try_simulate_layer(
        &self,
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
    ) -> Result<LayerLatency, AcsError> {
        let lat = self.simulate_layer(model, workload, phase);
        for op in lat.ops() {
            let ctx = format!("simulator.{}", op.name);
            guard::ensure_non_negative(&ctx, "time_s", op.time_s)?;
            guard::ensure_non_negative(&ctx, "compute_s", op.compute_s)?;
            guard::ensure_non_negative(&ctx, "dram_s", op.dram_s)?;
            guard::ensure_non_negative(&ctx, "l2_s", op.l2_s)?;
            guard::ensure_non_negative(&ctx, "comm_s", op.comm_s)?;
            guard::ensure_non_negative(&ctx, "dram_bytes", op.dram_bytes)?;
        }
        guard::ensure_finite("simulator.layer", "total_s", lat.total_s())?;
        Ok(lat)
    }

    /// Reject a plan built for a different node shape or operand dtype —
    /// executing it would price the wrong graph.
    pub(crate) fn check_plan(&self, plan: &LayerPlan) -> Result<(), AcsError> {
        if plan.device_count() != self.system.device_count() {
            return Err(AcsError::invalid_config(
                "plan.device_count",
                format!(
                    "plan was built for {} devices but the simulator's node has {}",
                    plan.device_count(),
                    self.system.device_count()
                ),
            ));
        }
        let dt = self.system.device().datatype().bytes();
        if plan.dtype_bytes() != dt {
            return Err(AcsError::invalid_config(
                "plan.dtype_bytes",
                format!(
                    "plan assumes {}-byte operands but the device computes in {}-byte operands",
                    plan.dtype_bytes(),
                    dt
                ),
            ));
        }
        Ok(())
    }

    /// [`Simulator::simulate_planned`] with the simulator's numeric
    /// contract enforced (see [`Simulator::try_simulate_layer`]) and the
    /// plan's node shape and dtype checked against this simulator. Guard
    /// contexts are built lazily, so the sweep hot path allocates nothing
    /// while every metric is healthy.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] on a mismatched plan and
    /// [`AcsError::NonFinite`] naming the offending operator and metric.
    pub fn try_simulate_planned(&self, plan: &LayerPlan) -> Result<LayerLatency, AcsError> {
        self.check_plan(plan)?;
        let lat = self.simulate_planned(plan);
        for op in lat.ops() {
            let ctx = || format!("simulator.{}", op.name);
            guard::ensure_non_negative_with(ctx, "time_s", op.time_s)?;
            guard::ensure_non_negative_with(ctx, "compute_s", op.compute_s)?;
            guard::ensure_non_negative_with(ctx, "dram_s", op.dram_s)?;
            guard::ensure_non_negative_with(ctx, "l2_s", op.l2_s)?;
            guard::ensure_non_negative_with(ctx, "comm_s", op.comm_s)?;
            guard::ensure_non_negative_with(ctx, "dram_bytes", op.dram_bytes)?;
        }
        guard::ensure_finite("simulator.layer", "total_s", lat.total_s())?;
        Ok(lat)
    }

    /// Guarded TTFT from a prebuilt prefill plan: finite and strictly
    /// positive, or a typed error. The plan-reuse counterpart of
    /// [`Simulator::try_ttft_s`] — bit-identical results, no per-call
    /// graph lowering.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the plan is not a prefill
    /// plan for this node, and [`AcsError::NonFinite`] when the latency
    /// is NaN, infinite, or non-positive.
    pub fn try_ttft_planned(&self, plan: &LayerPlan) -> Result<f64, AcsError> {
        if !matches!(plan.phase(), InferencePhase::Prefill) {
            return Err(AcsError::invalid_config(
                "plan.phase",
                "TTFT requires a prefill plan, got a decode plan",
            ));
        }
        let total = self.checked_total_planned(plan)?;
        guard::ensure_positive("simulator", "ttft_s", total)
    }

    /// Guarded TBT from a prebuilt decode plan (see
    /// [`Simulator::try_ttft_planned`]).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the plan is not a decode
    /// plan for this node, and [`AcsError::NonFinite`] when the latency
    /// is NaN, infinite, or non-positive.
    pub fn try_tbt_planned(&self, plan: &LayerPlan) -> Result<f64, AcsError> {
        if !matches!(plan.phase(), InferencePhase::Decode { .. }) {
            return Err(AcsError::invalid_config(
                "plan.phase",
                "TBT requires a decode plan, got a prefill plan",
            ));
        }
        let total = self.checked_total_planned(plan)?;
        guard::ensure_positive("simulator", "tbt_s", total)
    }

    /// Guarded [`Simulator::ttft_s`]: finite and strictly positive, or a
    /// typed error. Thin wrapper that lowers a single-use plan; sweeps
    /// should build the plan once and call
    /// [`Simulator::try_ttft_planned`].
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the node cannot
    /// tensor-parallelise the model, and [`AcsError::NonFinite`] when the
    /// latency is NaN, infinite, or non-positive.
    pub fn try_ttft_s(
        &self,
        model: &ModelConfig,
        workload: &WorkloadConfig,
    ) -> Result<f64, AcsError> {
        let plan = LayerPlan::for_simulator(self, model, workload, InferencePhase::Prefill)?;
        self.try_ttft_planned(&plan)
    }

    /// Guarded [`Simulator::tbt_s`]: finite and strictly positive, or a
    /// typed error. Thin wrapper that lowers a single-use plan; sweeps
    /// should build the plan once and call
    /// [`Simulator::try_tbt_planned`].
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the node cannot
    /// tensor-parallelise the model, and [`AcsError::NonFinite`] when the
    /// latency is NaN, infinite, or non-positive.
    pub fn try_tbt_s(
        &self,
        model: &ModelConfig,
        workload: &WorkloadConfig,
    ) -> Result<f64, AcsError> {
        let plan = LayerPlan::for_simulator(self, model, workload, workload.decode_phase())?;
        self.try_tbt_planned(&plan)
    }
}

/// Record per-operator-class modelled cost totals into the global
/// telemetry registry, aggregated per layer call.
///
/// The class totals are monotonic nanosecond counters rather than
/// histograms: this runs on the sweep hot path, where the <5%
/// profiling-overhead budget affords roughly one uncontended `fetch_add`
/// per operator class and nothing more. Exact totals (divided by the
/// `sim.layers.*` counts) answer the attribution question — where does
/// modelled time go? — while distributions live where they carry real
/// signal: per-point wall time (`dse.eval.point_us`) and serving step
/// costs (`sim.step.*`).
fn record_layer_telemetry(graph_ops: &[Operator], ops: &[OpCost], phase: InferencePhase) {
    let mut sums = [0.0f64; 4];
    for (op, cost) in graph_ops.iter().zip(ops) {
        if let Some(class) = op_class(op) {
            sums[class] += cost.time_s;
        }
    }
    flush_layer_telemetry(&sums, phase);
}

/// Telemetry class of one operator, indexing the `sim.cost_ns.*`
/// counters; `None` for operators outside the four tracked classes.
pub(crate) fn op_class(op: &Operator) -> Option<usize> {
    match op {
        // The attention score/context products are the workload's
        // quadratic term; track them separately from weight matmuls.
        Operator::Matmul(m) if m.name.starts_with("attn") => Some(1),
        Operator::Matmul(_) => Some(0),
        Operator::Vector(_) => Some(2),
        Operator::AllReduce(_) | Operator::AllToAll(_) => Some(3),
        _ => None,
    }
}

/// Flush one layer's accumulated per-class cost totals (indexed by
/// [`op_class`]) and bump the per-phase layer counter.
pub(crate) fn flush_layer_telemetry(sums: &[f64; 4], phase: InferencePhase) {
    use acs_telemetry::GlobalCounter;
    // Cached handles: no registry name lookup (let alone a `format!`)
    // per simulated layer.
    static COST_COUNTERS: [GlobalCounter; 4] = [
        GlobalCounter::new("sim.cost_ns.matmul"),
        GlobalCounter::new("sim.cost_ns.attention"),
        GlobalCounter::new("sim.cost_ns.vector"),
        GlobalCounter::new("sim.cost_ns.collective"),
    ];
    static PREFILL_LAYERS: GlobalCounter = GlobalCounter::new("sim.layers.prefill");
    static DECODE_LAYERS: GlobalCounter = GlobalCounter::new("sim.layers.decode");
    for i in 0..4 {
        if sums[i] > 0.0 {
            COST_COUNTERS[i].add((sums[i] * 1e9) as u64);
        }
    }
    if matches!(phase, InferencePhase::Prefill) {
        PREFILL_LAYERS.add(1);
    } else {
        DECODE_LAYERS.add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::DeviceConfig;

    fn a100_sim() -> Simulator {
        Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap())
    }

    fn gpt3() -> ModelConfig {
        ModelConfig::gpt3_175b()
    }

    fn work() -> WorkloadConfig {
        WorkloadConfig::paper_default()
    }

    #[test]
    fn a100_gpt3_anchors_near_paper_values() {
        // Paper (Fig. 5/6): modeled A100 TTFT ≈ 280 ms, TBT ≈ 1.44 ms.
        let sim = a100_sim();
        let ttft_ms = sim.ttft_s(&gpt3(), &work()) * 1e3;
        let tbt_ms = sim.tbt_s(&gpt3(), &work()) * 1e3;
        assert!(
            ttft_ms > 200.0 && ttft_ms < 360.0,
            "TTFT out of anchor band: {ttft_ms} ms"
        );
        assert!(tbt_ms > 1.0 && tbt_ms < 1.9, "TBT out of anchor band: {tbt_ms} ms");
    }

    #[test]
    fn a100_llama3_anchors_are_faster_than_gpt3() {
        let sim = a100_sim();
        let llama = ModelConfig::llama3_8b();
        let ttft_ms = sim.ttft_s(&llama, &work()) * 1e3;
        let tbt_ms = sim.tbt_s(&llama, &work()) * 1e3;
        // Paper (Fig. 6d/6e): ≈ 47 ms and ≈ 0.6 ms.
        assert!(ttft_ms > 25.0 && ttft_ms < 70.0, "TTFT = {ttft_ms} ms");
        assert!(tbt_ms > 0.25 && tbt_ms < 0.9, "TBT = {tbt_ms} ms");
        assert!(ttft_ms < sim.ttft_s(&gpt3(), &work()) * 1e3);
    }

    #[test]
    fn prefill_is_mostly_compute_bound_decode_mostly_memory_bound() {
        let sim = a100_sim();
        let prefill = sim.simulate_layer(&gpt3(), &work(), InferencePhase::Prefill);
        let decode = sim.simulate_layer(&gpt3(), &work(), work().decode_phase());
        assert!(prefill.time_bound_by(Bound::Compute) > prefill.total_s() * 0.5);
        assert!(decode.time_bound_by(Bound::Memory) > decode.total_s() * 0.5);
    }

    #[test]
    fn memory_bandwidth_moves_tbt_much_more_than_ttft() {
        // §4.2: decoding levels are set by memory bandwidth.
        let slow = a100_sim();
        let fast_dev =
            DeviceConfig::a100_like().to_builder().hbm_bandwidth_tb_s(3.2).build().unwrap();
        let fast = Simulator::new(SystemConfig::quad(fast_dev).unwrap());
        let tbt_gain = slow.tbt_s(&gpt3(), &work()) / fast.tbt_s(&gpt3(), &work());
        let ttft_gain = slow.ttft_s(&gpt3(), &work()) / fast.ttft_s(&gpt3(), &work());
        assert!(tbt_gain > 1.2, "TBT gain = {tbt_gain}");
        assert!(ttft_gain < 1.1, "TTFT gain = {ttft_gain}");
        assert!(tbt_gain > ttft_gain);
    }

    #[test]
    fn device_bandwidth_barely_moves_tbt() {
        // §4.1: 600 → 1000 GB/s decreases TBT by only ~0.27 %.
        let base = a100_sim();
        let fat_dev =
            DeviceConfig::a100_like().to_builder().device_bandwidth_gb_s(1000.0).build().unwrap();
        let fat = Simulator::new(SystemConfig::quad(fat_dev).unwrap());
        let rel = 1.0 - fat.tbt_s(&gpt3(), &work()) / base.tbt_s(&gpt3(), &work());
        assert!(rel > 0.0 && rel < 0.02, "relative TBT gain = {rel}");
    }

    #[test]
    fn more_cores_cut_ttft_roughly_proportionally() {
        // §4.1: TPP 4000 → 5000 decreases TTFT by ~16 %.
        let d4000 = DeviceConfig::a100_like().to_builder().core_count(86).build().unwrap();
        let d5000 = DeviceConfig::a100_like().to_builder().core_count(108).build().unwrap();
        let s4000 = Simulator::new(SystemConfig::quad(d4000).unwrap());
        let s5000 = Simulator::new(SystemConfig::quad(d5000).unwrap());
        let rel = 1.0 - s5000.ttft_s(&gpt3(), &work()) / s4000.ttft_s(&gpt3(), &work());
        assert!(rel > 0.10 && rel < 0.25, "relative TTFT gain = {rel}");
    }

    #[test]
    fn layer_latency_breakdown_sums_to_total() {
        let sim = a100_sim();
        let lat = sim.simulate_layer(&gpt3(), &work(), InferencePhase::Prefill);
        let sum: f64 = lat.ops().iter().map(|o| o.time_s).sum();
        assert!((sum - lat.total_s()).abs() < 1e-12);
        assert!(lat.slowest_op().is_some());
    }

    #[test]
    fn full_model_scales_by_layer_count() {
        let sim = a100_sim();
        let per_layer = sim.ttft_s(&gpt3(), &work());
        assert!((sim.full_model_ttft_s(&gpt3(), &work()) - 96.0 * per_layer).abs() < 1e-9);
    }

    #[test]
    fn display_lists_operators() {
        let sim = a100_sim();
        let lat = sim.simulate_layer(&gpt3(), &work(), work().decode_phase());
        let s = lat.to_string();
        assert!(s.contains("qkv_proj"));
        assert!(s.contains("allreduce_ffn"));
    }

    #[test]
    fn try_variants_pass_healthy_configs_and_agree_with_unchecked() {
        let sim = a100_sim();
        let ttft = sim.try_ttft_s(&gpt3(), &work()).unwrap();
        let tbt = sim.try_tbt_s(&gpt3(), &work()).unwrap();
        assert_eq!(ttft, sim.ttft_s(&gpt3(), &work()));
        assert_eq!(tbt, sim.tbt_s(&gpt3(), &work()));
        let lat = sim
            .try_simulate_layer(&gpt3(), &work(), InferencePhase::Prefill)
            .unwrap();
        assert!(lat.total_s().is_finite() && lat.total_s() > 0.0);
    }

    #[test]
    fn decode_context_growth_increases_tbt() {
        let sim = a100_sim();
        let short = sim
            .simulate_layer(&gpt3(), &work(), InferencePhase::Decode { context_len: 1024 })
            .total_s();
        let long = sim
            .simulate_layer(&gpt3(), &work(), InferencePhase::Decode { context_len: 3072 })
            .total_s();
        assert!(long > short);
    }
}
