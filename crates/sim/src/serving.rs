//! Serving-level simulation: continuous batching over a request trace.
//!
//! The layer simulator prices one phase of one batch; real deployments
//! interleave many requests. This module runs an iteration-level
//! (Orca-style) scheduler over a [`RequestTrace`]: waiting requests are
//! prefilled one at a time and join the running batch, which advances one
//! decode token per iteration; per-iteration costs come from the
//! analytical simulator at the *current* batch size and context. The
//! output is what an operator cares about — TTFT/TBT percentiles and
//! sustained throughput — letting restricted and compliant devices be
//! compared at the serving level, not just per-kernel.
//!
//! Per-iteration costs are memoised. [`simulate_serving`] keeps a local
//! per-call table; [`simulate_serving_cached`] shares a content-addressed
//! [`StepCostCache`] across calls (and threads), so a long-lived service
//! re-pricing the same device/model pairs skips the analytical model
//! entirely on repeat visits.

use crate::latency::Simulator;
use acs_cache::{CacheKey, CacheStats, ShardedCache};
use acs_errors::json::{object, Value};
use acs_llm::{InferencePhase, ModelConfig, RequestTrace, WorkloadConfig};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Maximum requests decoded together.
    pub max_batch: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig { max_batch: 32 }
    }
}

/// Aggregate serving metrics over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingMetrics {
    /// Requests completed.
    pub completed: usize,
    /// Mean time-to-first-token over completed requests, seconds
    /// (queueing included).
    pub mean_ttft_s: f64,
    /// Median TTFT, seconds.
    pub p50_ttft_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub p99_ttft_s: f64,
    /// Mean per-token decode latency experienced, seconds.
    pub mean_tbt_s: f64,
    /// Output tokens generated per wall-clock second.
    pub throughput_tokens_per_s: f64,
    /// Wall-clock span of the simulation, seconds.
    pub makespan_s: f64,
}

/// Nearest-rank percentile over an ascending-sorted slice (`p` in 0..=1).
/// Returns 0 for an empty slice; with a single sample every percentile is
/// that sample, so p50 == p99 by construction.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

struct Active {
    remaining: u64,
    context: u64,
    tbt_sum: f64,
    tbt_count: u64,
    ttft_s: f64,
}

/// A shared, content-addressed cache of full-model phase costs, keyed by
/// the canonical JSON encoding of (device fingerprint, model, phase,
/// batch, bucketed context). Share one instance across
/// [`simulate_serving_cached`] calls — from sweeps, repro runs, or a
/// long-lived service — to skip re-pricing identical steps.
#[derive(Debug)]
pub struct StepCostCache {
    inner: ShardedCache<f64>,
}

impl StepCostCache {
    /// A cache bounded to `capacity` step costs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        StepCostCache { inner: ShardedCache::new(capacity) }
    }

    /// Hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Entries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Default for StepCostCache {
    fn default() -> Self {
        StepCostCache::new(4096)
    }
}

/// Everything that determines a step cost, canonically encoded. The
/// model, bucketed step shape, phase, tensor-parallel degree, and dtype
/// are content-addressed through the layer-plan digest
/// ([`crate::plan::plan_digest`]); the device's architectural parameters
/// and the calibration — the remaining cost inputs — are keyed
/// explicitly. The device *name* is excluded: only load-bearing
/// parameters are keyed, so identically configured devices share entries.
fn step_key(
    sim: &Simulator,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    phase: InferencePhase,
) -> CacheKey {
    let d = sim.system().device();
    let p = sim.params();
    let n = Value::Number;
    let u = |x: u64| Value::Number(x as f64);
    let plan = crate::plan::plan_digest(
        model,
        workload,
        phase,
        sim.system().device_count(),
        d.datatype().bytes(),
    );
    CacheKey::from_value(&object(vec![
        ("v", Value::String("sim-step-v2".to_owned())),
        (
            "device",
            object(vec![
                ("cores", u(u64::from(d.core_count()))),
                ("lanes", u(u64::from(d.lanes_per_core()))),
                ("sys_x", u(u64::from(d.systolic().x))),
                ("sys_y", u(u64::from(d.systolic().y))),
                ("vec", u(u64::from(d.vector_width()))),
                ("ghz", n(d.frequency_ghz())),
                ("l1_kib", u(u64::from(d.l1_kib_per_core()))),
                ("l2_mib", u(u64::from(d.l2_mib()))),
                ("hbm_gb_s", n(d.hbm().bandwidth_gb_s)),
                ("hbm_gib", n(d.hbm().capacity_gib)),
                ("phy_gb_s", n(d.phy().total_gb_s())),
                ("dtype_bits", u(u64::from(d.datatype().bit_width()))),
            ]),
        ),
        (
            "params",
            object(vec![
                ("dram_eff", n(p.dram_efficiency)),
                ("dram_lat", n(p.dram_latency_s)),
                ("op_ovh", n(p.op_overhead_s)),
                ("l2_bpc", n(p.l2_bytes_per_lane_cycle)),
                ("ar_step", n(p.allreduce_step_latency_s)),
                ("l1_frac", n(p.l1_usable_fraction)),
                ("l2_frac", n(p.l2_usable_fraction)),
            ]),
        ),
        ("plan", Value::String(CacheKey::digest_hex(plan))),
    ]))
}

/// The continuous-batching scheduler, generic over the step-cost source.
fn run_schedule(
    trace: &RequestTrace,
    config: ServingConfig,
    mut prefill_cost: impl FnMut(u64) -> f64,
    mut decode_cost: impl FnMut(usize, u64) -> f64,
) -> ServingMetrics {
    let mut waiting: VecDeque<(f64, u64, u64)> = VecDeque::new();
    let mut pending = trace.requests().iter().copied().peekable();
    let mut active: Vec<Active> = Vec::new();
    let mut done: Vec<Active> = Vec::new();
    let mut now = 0.0_f64;
    let mut output_tokens = 0u64;

    loop {
        // Admit arrivals up to `now`.
        while let Some(r) = pending.peek() {
            if r.arrival_s <= now {
                waiting.push_back((r.arrival_s, r.input_len, r.output_len));
                pending.next();
            } else {
                break;
            }
        }

        let can_admit = active.len() < config.max_batch;
        if let Some((arrival, input, output)) =
            if can_admit { waiting.pop_front() } else { None }
        {
            // Prefill one waiting request and admit it. Cached handles:
            // this fires once per simulated step, far too often for a
            // registry name lookup per call.
            static PREFILL_STEPS: acs_telemetry::GlobalCounter =
                acs_telemetry::GlobalCounter::new("sim.serving.prefill_steps");
            static PREFILL_COST_US: acs_telemetry::GlobalHistogram =
                acs_telemetry::GlobalHistogram::new("sim.serving.prefill_cost_us");
            let step = prefill_cost(input);
            PREFILL_STEPS.add(1);
            PREFILL_COST_US.record(step * 1e6);
            now += step;
            output_tokens += 1; // the prefill emits the first token
            let mut req = Active {
                remaining: output.saturating_sub(1),
                context: input + 1,
                tbt_sum: 0.0,
                tbt_count: 0,
                ttft_s: now - arrival,
            };
            if req.remaining == 0 {
                done.push(req);
            } else {
                req.context = input + 1;
                active.push(req);
            }
        } else if !active.is_empty() {
            // One decode iteration for the whole batch.
            let mean_context =
                active.iter().map(|a| a.context).sum::<u64>() / active.len() as u64;
            static DECODE_STEPS: acs_telemetry::GlobalCounter =
                acs_telemetry::GlobalCounter::new("sim.serving.decode_steps");
            static DECODE_COST_US: acs_telemetry::GlobalHistogram =
                acs_telemetry::GlobalHistogram::new("sim.serving.decode_cost_us");
            let step = decode_cost(active.len(), mean_context);
            DECODE_STEPS.add(1);
            DECODE_COST_US.record(step * 1e6);
            now += step;
            output_tokens += active.len() as u64;
            for a in &mut active {
                a.remaining -= 1;
                a.context += 1;
                a.tbt_sum += step;
                a.tbt_count += 1;
            }
            let mut i = 0;
            while i < active.len() {
                if active[i].remaining == 0 {
                    done.push(active.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        } else if let Some(r) = pending.peek() {
            // Idle: fast-forward to the next arrival.
            now = r.arrival_s;
        } else {
            break; // drained
        }
    }

    let completed = done.len();
    let mut ttfts: Vec<f64> = done.iter().map(|d| d.ttft_s).collect();
    ttfts.sort_by(f64::total_cmp);
    let mean_ttft = if completed > 0 {
        ttfts.iter().sum::<f64>() / completed as f64
    } else {
        0.0
    };
    let (tbt_sum, tbt_count) = done
        .iter()
        .fold((0.0, 0u64), |(s, c), d| (s + d.tbt_sum, c + d.tbt_count));
    ServingMetrics {
        completed,
        mean_ttft_s: mean_ttft,
        p50_ttft_s: percentile(&ttfts, 0.50),
        p99_ttft_s: percentile(&ttfts, 0.99),
        mean_tbt_s: if tbt_count > 0 { tbt_sum / tbt_count as f64 } else { 0.0 },
        throughput_tokens_per_s: if now > 0.0 { output_tokens as f64 / now } else { 0.0 },
        makespan_s: now,
    }
}

/// Bucket contexts/lengths to powers of two to bound the memo tables.
fn bucket(x: u64) -> u64 {
    x.max(1).next_power_of_two()
}

fn full_prefill_cost(sim: &Simulator, model: &ModelConfig, bucketed_len: u64) -> f64 {
    let layers = f64::from(model.num_layers());
    let w = WorkloadConfig::new(1, bucketed_len, 1);
    sim.simulate_layer(model, &w, InferencePhase::Prefill).total_s() * layers
}

fn full_decode_cost(sim: &Simulator, model: &ModelConfig, batch: usize, bucketed_ctx: u64) -> f64 {
    let layers = f64::from(model.num_layers());
    let w = WorkloadConfig::new(batch as u64, bucketed_ctx, 1);
    sim.simulate_layer(model, &w, InferencePhase::Decode { context_len: bucketed_ctx })
        .total_s()
        * layers
}

/// Run the continuous-batching scheduler for `model` on `sim`'s node over
/// `trace`.
///
/// Scheduling policy: prefill-prioritised — whenever a request is waiting
/// and the batch has room, it is prefilled (batch size 1) and admitted;
/// otherwise the running batch advances one decode iteration. Idle time
/// fast-forwards to the next arrival.
///
/// # Example
///
/// ```
/// use acs_hw::{DeviceConfig, SystemConfig};
/// use acs_llm::{LengthDistribution, ModelConfig, RequestTrace};
/// use acs_sim::{simulate_serving, ServingConfig, Simulator};
///
/// let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like())?);
/// let trace = RequestTrace::synthetic(
///     2.0, 10.0,
///     LengthDistribution::chat_prompts(),
///     LengthDistribution::chat_outputs(),
///     7,
/// )?;
/// let metrics = simulate_serving(&sim, &ModelConfig::llama3_8b(), &trace,
///     ServingConfig::default());
/// assert_eq!(metrics.completed, trace.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn simulate_serving(
    sim: &Simulator,
    model: &ModelConfig,
    trace: &RequestTrace,
    config: ServingConfig,
) -> ServingMetrics {
    // Memoised full-model costs, local to this call.
    let mut prefill_cache: HashMap<u64, f64> = HashMap::new();
    let mut decode_cache: HashMap<(usize, u64), f64> = HashMap::new();
    run_schedule(
        trace,
        config,
        |len| {
            let key = bucket(len);
            *prefill_cache.entry(key).or_insert_with(|| full_prefill_cost(sim, model, key))
        },
        |batch, context| {
            let key = (batch, bucket(context));
            *decode_cache
                .entry(key)
                .or_insert_with(|| full_decode_cost(sim, model, batch, key.1))
        },
    )
}

/// [`simulate_serving`] with step costs shared through a long-lived
/// [`StepCostCache`]: identical steps across *calls* — repeated service
/// queries, sweep points revisiting a device, repro re-runs — hit memory
/// instead of the analytical model. Results are bit-identical to
/// [`simulate_serving`] because the memoisation key (bucketed context,
/// batch, device/model/calibration fingerprint) captures every input of
/// the step cost.
#[must_use]
pub fn simulate_serving_cached(
    sim: &Simulator,
    model: &ModelConfig,
    trace: &RequestTrace,
    config: ServingConfig,
    cache: &StepCostCache,
) -> ServingMetrics {
    run_schedule(
        trace,
        config,
        |len| {
            let key = bucket(len);
            let (cost, hit) = cache
                .inner
                .get_or_try_insert::<std::convert::Infallible>(
                    &step_key(
                        sim,
                        model,
                        &WorkloadConfig::new(1, key, 1),
                        InferencePhase::Prefill,
                    ),
                    || Ok(full_prefill_cost(sim, model, key)),
                )
                .unwrap_or_else(|e| match e {});
            record_stepcache(hit);
            cost
        },
        |batch, context| {
            let key = bucket(context);
            let (cost, hit) = cache
                .inner
                .get_or_try_insert::<std::convert::Infallible>(
                    &step_key(
                        sim,
                        model,
                        &WorkloadConfig::new(batch as u64, key, 1),
                        InferencePhase::Decode { context_len: key },
                    ),
                    || Ok(full_decode_cost(sim, model, batch, key)),
                )
                .unwrap_or_else(|e| match e {});
            record_stepcache(hit);
            cost
        },
    )
}

/// Per-step cache-outcome telemetry, with cached handles (one call per
/// simulated serving step).
fn record_stepcache(hit: bool) {
    static HITS: acs_telemetry::GlobalCounter =
        acs_telemetry::GlobalCounter::new("sim.stepcache.hits");
    static MISSES: acs_telemetry::GlobalCounter =
        acs_telemetry::GlobalCounter::new("sim.stepcache.misses");
    if hit {
        HITS.add(1);
    } else {
        MISSES.add(1);
    }
}

/// Disaggregated (Splitwise-style) serving: a dedicated prefill node
/// processes prompts FIFO and hands the KV cache to a dedicated decode
/// node that runs continuous batching.
///
/// The handoff ships the request's KV cache
/// (`input_len × kv_dim × 2` bytes per layer, all layers) over the
/// prefill node's device links. TTFT is the prefill completion (the
/// prefill emits the first token); decoding proceeds undisturbed by
/// arriving prompts — the interference-isolation argument of the
/// phase-splitting literature the paper cites.
#[must_use]
pub fn simulate_disaggregated(
    prefill_sim: &Simulator,
    decode_sim: &Simulator,
    model: &ModelConfig,
    trace: &RequestTrace,
    config: ServingConfig,
) -> ServingMetrics {
    let layers = f64::from(model.num_layers());
    let link = prefill_sim.system().device().phy().unidirectional_gb_s() * 1e9;

    // FIFO prefill schedule: each request's decode-ready time.
    let mut ready = Vec::with_capacity(trace.len());
    let mut free_at = 0.0_f64;
    let mut prefill_cache: HashMap<u64, f64> = HashMap::new();
    for r in trace.requests() {
        let key = r.input_len.max(1).next_power_of_two();
        let cost = *prefill_cache
            .entry(key)
            .or_insert_with(|| full_prefill_cost(prefill_sim, model, key));
        let kv_bytes =
            (r.input_len * model.kv_bytes_per_token_per_layer(2)) as f64 * layers;
        let start = free_at.max(r.arrival_s);
        free_at = start + cost + kv_bytes / link;
        ready.push((free_at, r));
    }

    // The decode node sees "arrivals" at prefill completion; its TTFT
    // contribution is already paid, so requests enter with their first
    // token produced.
    let decode_trace = RequestTrace::new(
        ready
            .iter()
            .map(|(t, r)| acs_llm::Request {
                arrival_s: *t,
                input_len: r.input_len,
                output_len: r.output_len,
            })
            .collect(),
    );
    // Reuse the aggregated scheduler with prefill made free on the decode
    // node: emulate by measuring decode-side metrics, then overwrite TTFT
    // with the true prefill-side figures.
    let mut metrics = simulate_serving(decode_sim, model, &decode_trace, config);
    let mut ttfts: Vec<f64> =
        ready.iter().map(|(t, r)| *t - r.arrival_s).collect();
    ttfts.sort_by(f64::total_cmp);
    if !ttfts.is_empty() {
        metrics.mean_ttft_s = ttfts.iter().sum::<f64>() / ttfts.len() as f64;
        metrics.p50_ttft_s = percentile(&ttfts, 0.50);
        metrics.p99_ttft_s = percentile(&ttfts, 0.99);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::{DeviceConfig, SystemConfig};
    use acs_llm::{LengthDistribution, RequestTrace};

    fn sim() -> Simulator {
        Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap())
    }

    fn trace(rate: f64, seed: u64) -> RequestTrace {
        RequestTrace::synthetic(
            rate,
            30.0,
            LengthDistribution { median: 512, sigma: 0.5, min: 64, max: 2048 },
            LengthDistribution { median: 64, sigma: 0.5, min: 4, max: 256 },
            seed,
        )
        .unwrap()
    }

    #[test]
    fn all_requests_complete_and_metrics_are_sane() {
        let t = trace(1.0, 1);
        let m = simulate_serving(&sim(), &ModelConfig::llama3_8b(), &t, ServingConfig::default());
        assert_eq!(m.completed, t.len());
        assert!(m.mean_ttft_s > 0.0 && m.mean_ttft_s.is_finite());
        assert!(m.p99_ttft_s >= m.mean_ttft_s * 0.5);
        assert!(m.p50_ttft_s > 0.0 && m.p50_ttft_s <= m.p99_ttft_s);
        assert!(m.mean_tbt_s > 0.0);
        assert!(m.throughput_tokens_per_s > 0.0);
        assert!(m.makespan_s >= 30.0 * 0.5);
    }

    #[test]
    fn overload_inflates_ttft() {
        let model = ModelConfig::llama3_8b();
        let light = simulate_serving(&sim(), &model, &trace(0.5, 2), ServingConfig::default());
        let heavy = simulate_serving(&sim(), &model, &trace(30.0, 2), ServingConfig::default());
        assert!(
            heavy.p99_ttft_s > 2.0 * light.p99_ttft_s,
            "queueing should dominate under overload: {} vs {}",
            heavy.p99_ttft_s,
            light.p99_ttft_s
        );
    }

    #[test]
    fn larger_batch_limit_raises_throughput_under_load() {
        let model = ModelConfig::llama3_8b();
        let t = trace(20.0, 3);
        let small = simulate_serving(&sim(), &model, &t, ServingConfig { max_batch: 2 });
        let large = simulate_serving(&sim(), &model, &t, ServingConfig { max_batch: 32 });
        assert!(
            large.throughput_tokens_per_s > small.throughput_tokens_per_s,
            "{} vs {}",
            large.throughput_tokens_per_s,
            small.throughput_tokens_per_s
        );
    }

    #[test]
    fn bandwidth_rich_compliant_device_serves_more() {
        // The §4 asymmetry at the serving level: a TPP-capped but
        // bandwidth-maxed design sustains decode-heavy serving at least
        // as well as the A100.
        let model = ModelConfig::llama3_8b();
        let t = trace(15.0, 4);
        let compliant_dev = DeviceConfig::builder()
            .core_count(207)
            .lanes_per_core(2)
            .l2_mib(64)
            .hbm_bandwidth_tb_s(3.2)
            .build()
            .unwrap();
        let compliant =
            Simulator::new(SystemConfig::quad(compliant_dev).unwrap());
        let a = simulate_serving(&sim(), &model, &t, ServingConfig::default());
        let c = simulate_serving(&compliant, &model, &t, ServingConfig::default());
        assert!(
            c.throughput_tokens_per_s >= a.throughput_tokens_per_s * 0.95,
            "compliant {} vs A100 {}",
            c.throughput_tokens_per_s,
            a.throughput_tokens_per_s
        );
    }

    #[test]
    fn disaggregation_isolates_decode_from_prefill_interference() {
        // Same decode hardware; under load the aggregated node's decode
        // steps stall behind arriving prefills, the disaggregated one's
        // do not.
        let model = ModelConfig::llama3_8b();
        let t = trace(12.0, 5);
        let aggregated =
            simulate_serving(&sim(), &model, &t, ServingConfig::default());
        let disagg = simulate_disaggregated(&sim(), &sim(), &model, &t, ServingConfig::default());
        assert_eq!(disagg.completed, t.len());
        assert!(
            disagg.mean_tbt_s <= aggregated.mean_tbt_s * 1.05,
            "decode-side TBT should not regress: {} vs {}",
            disagg.mean_tbt_s,
            aggregated.mean_tbt_s
        );
        assert!(disagg.p99_ttft_s > 0.0 && disagg.p99_ttft_s.is_finite());
        assert!(disagg.p50_ttft_s > 0.0 && disagg.p50_ttft_s <= disagg.p99_ttft_s);
    }

    #[test]
    fn disaggregated_ttft_includes_queueing_and_kv_transfer() {
        let model = ModelConfig::llama3_8b();
        // A deterministic two-request trace arriving together: the second
        // prefill queues behind the first.
        let t = RequestTrace::new(vec![
            acs_llm::Request { arrival_s: 0.0, input_len: 1024, output_len: 8 },
            acs_llm::Request { arrival_s: 0.0, input_len: 1024, output_len: 8 },
        ]);
        let m = simulate_disaggregated(&sim(), &sim(), &model, &t, ServingConfig::default());
        assert_eq!(m.completed, 2);
        // Mean TTFT ≈ 1.5x the single-prefill latency (0.5·(1 + 2)).
        let single = m.p99_ttft_s / 2.0;
        assert!(
            (m.mean_ttft_s - 1.5 * single).abs() / m.mean_ttft_s < 0.05,
            "mean {} p99 {}",
            m.mean_ttft_s,
            m.p99_ttft_s
        );
    }

    #[test]
    fn empty_trace_yields_zero_metrics() {
        let t = RequestTrace::new(Vec::new());
        let m = simulate_serving(&sim(), &ModelConfig::llama3_8b(), &t, ServingConfig::default());
        assert_eq!(m.completed, 0);
        assert_eq!(m.throughput_tokens_per_s, 0.0);
        assert_eq!(m.p50_ttft_s, 0.0);
        assert_eq!(m.p99_ttft_s, 0.0);
        assert_eq!(m.makespan_s, 0.0);
    }

    #[test]
    fn max_batch_one_serialises_but_completes_everything() {
        let model = ModelConfig::llama3_8b();
        let t = trace(2.0, 6);
        let serial = simulate_serving(&sim(), &model, &t, ServingConfig { max_batch: 1 });
        assert_eq!(serial.completed, t.len());
        assert!(serial.mean_tbt_s > 0.0 && serial.mean_tbt_s.is_finite());
        // Serial decoding cannot out-run the batched default.
        let batched = simulate_serving(&sim(), &model, &t, ServingConfig::default());
        assert!(serial.throughput_tokens_per_s <= batched.throughput_tokens_per_s * 1.0001);
    }

    #[test]
    fn single_request_percentiles_collapse_to_the_sample() {
        let t = RequestTrace::new(vec![acs_llm::Request {
            arrival_s: 0.0,
            input_len: 512,
            output_len: 16,
        }]);
        let m = simulate_serving(&sim(), &ModelConfig::llama3_8b(), &t, ServingConfig::default());
        assert_eq!(m.completed, 1);
        // One sample: every percentile is that sample.
        assert_eq!(m.p50_ttft_s, m.p99_ttft_s);
        assert_eq!(m.p50_ttft_s, m.mean_ttft_s);
        assert!(m.p50_ttft_s > 0.0);
    }

    #[test]
    fn percentile_math_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.5), 3.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.5), 51.0); // round(99·0.5) = 50 ⇒ index 50
    }

    #[test]
    fn cached_serving_is_bit_identical_and_hits_on_repeat() {
        let model = ModelConfig::llama3_8b();
        let t = trace(2.0, 7);
        let s = sim();
        let cache = StepCostCache::new(1024);
        let cold = simulate_serving_cached(&s, &model, &t, ServingConfig::default(), &cache);
        let local = simulate_serving(&s, &model, &t, ServingConfig::default());
        assert_eq!(cold, local, "shared-cache path must not change results");
        let after_cold = cache.stats();
        assert!(after_cold.insertions > 0);
        let warm = simulate_serving_cached(&s, &model, &t, ServingConfig::default(), &cache);
        assert_eq!(warm, cold);
        let after_warm = cache.stats();
        assert!(after_warm.hits > after_cold.hits, "repeat run should hit");
        assert_eq!(
            after_warm.insertions, after_cold.insertions,
            "repeat run should insert nothing new"
        );
    }

    #[test]
    fn step_cache_distinguishes_devices_and_models() {
        let cache = StepCostCache::new(4096);
        let t = RequestTrace::new(vec![acs_llm::Request {
            arrival_s: 0.0,
            input_len: 256,
            output_len: 4,
        }]);
        let a100 = sim();
        let other_dev = DeviceConfig::builder()
            .core_count(64)
            .hbm_bandwidth_tb_s(3.2)
            .build()
            .unwrap();
        let other = Simulator::new(SystemConfig::quad(other_dev).unwrap());
        let m1 = simulate_serving_cached(
            &a100,
            &ModelConfig::llama3_8b(),
            &t,
            ServingConfig::default(),
            &cache,
        );
        let m2 =
            simulate_serving_cached(&other, &ModelConfig::llama3_8b(), &t, ServingConfig::default(), &cache);
        let m3 = simulate_serving_cached(
            &a100,
            &ModelConfig::gpt3_175b(),
            &t,
            ServingConfig::default(),
            &cache,
        );
        // Different hardware and different models must not alias.
        assert_ne!(m1.mean_ttft_s, m2.mean_ttft_s);
        assert_ne!(m1.mean_ttft_s, m3.mean_ttft_s);
        assert_eq!(
            simulate_serving(&other, &ModelConfig::llama3_8b(), &t, ServingConfig::default()),
            m2
        );
    }
}
