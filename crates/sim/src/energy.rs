//! Energy accounting on top of the latency simulation.
//!
//! Combines the layer's simulated work (MACs, vector FLOPs, DRAM bytes,
//! link bytes) and wall-clock time with [`acs_hw::PowerModel`] to produce
//! per-layer and per-token energy — quantifying §4.4's observation that
//! cache-bloated PD-compliant designs burn more power for the same work.

use crate::latency::Simulator;
use acs_hw::PowerModel;
use acs_llm::{InferencePhase, LayerGraph, ModelConfig, Operator, WorkloadConfig};

/// Energy of one simulated layer, per device and for the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// One device's energy for the layer, joules.
    pub per_device_j: f64,
    /// Whole-node energy for the layer (devices × per-device), joules.
    pub node_j: f64,
    /// Average node power over the layer, watts.
    pub avg_power_w: f64,
    /// Layer latency used for the static charge, seconds.
    pub time_s: f64,
}

/// Energy of one layer of `model` under `phase` on `sim`'s node.
#[must_use]
pub fn layer_energy(
    sim: &Simulator,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    phase: InferencePhase,
    power: &PowerModel,
) -> EnergyReport {
    let device = sim.system().device();
    let latency = sim.simulate_layer(model, workload, phase);
    let graph = LayerGraph::build(model, workload, phase, sim.system().device_count());

    let macs = graph.matmul_flops() / 2.0;
    let vector_flops: f64 = graph
        .ops()
        .iter()
        .filter_map(|op| match op {
            Operator::Vector(v) => Some(v.flops()),
            _ => None,
        })
        .sum();
    // Ring all-reduce moves 2·(n−1)/n of the payload per device.
    let n = f64::from(sim.system().device_count());
    let ar_factor = if n > 1.0 { 2.0 * (n - 1.0) / n } else { 0.0 };
    let link_bytes: f64 = graph
        .ops()
        .iter()
        .filter_map(|op| match op {
            Operator::AllReduce(a) => Some(a.bytes as f64 * ar_factor),
            _ => None,
        })
        .sum();

    let time_s = latency.total_s();
    let per_device_j = power.interval_energy_j(
        device,
        macs,
        vector_flops,
        latency.dram_bytes(),
        link_bytes,
        time_s,
    );
    let node_j = per_device_j * n;
    EnergyReport {
        per_device_j,
        node_j,
        avg_power_w: if time_s > 0.0 { node_j / time_s } else { 0.0 },
        time_s,
    }
}

/// Full-model decode energy per generated token, joules
/// (`layers × layer energy ÷ batch`).
#[must_use]
pub fn energy_per_token_j(
    sim: &Simulator,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    power: &PowerModel,
) -> f64 {
    let report = layer_energy(sim, model, workload, workload.decode_phase(), power);
    report.node_j * f64::from(model.num_layers()) / workload.batch() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::{DeviceConfig, SystemConfig};

    fn sim() -> Simulator {
        Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap())
    }

    #[test]
    fn a100_decode_power_is_physically_plausible() {
        let s = sim();
        let p = PowerModel::n7();
        let report = layer_energy(
            &s,
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            WorkloadConfig::paper_default().decode_phase(),
            &p,
        );
        let per_device_w = report.avg_power_w / 4.0;
        // Decode is bandwidth-bound: well under TDP but above idle.
        let tdp = p.tdp_w(s.system().device());
        let idle = p.static_w(s.system().device());
        assert!(per_device_w < tdp, "{per_device_w} W < TDP {tdp} W");
        assert!(per_device_w > idle, "{per_device_w} W > idle {idle} W");
    }

    #[test]
    fn prefill_draws_more_power_than_decode() {
        let s = sim();
        let p = PowerModel::n7();
        let w = WorkloadConfig::paper_default();
        let m = ModelConfig::gpt3_175b();
        let prefill = layer_energy(&s, &m, &w, InferencePhase::Prefill, &p);
        let decode = layer_energy(&s, &m, &w, w.decode_phase(), &p);
        assert!(prefill.avg_power_w > decode.avg_power_w);
        assert!(prefill.node_j > decode.node_j);
    }

    #[test]
    fn gpt3_energy_per_token_is_joules_scale() {
        let s = sim();
        let e = energy_per_token_j(
            &s,
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            &PowerModel::n7(),
        );
        // 96 layers × ~1.4 ms × ~1 kW node / 32 tokens ≈ a few joules.
        assert!(e > 0.5 && e < 30.0, "energy/token = {e} J");
    }

    #[test]
    fn sram_heavy_design_burns_more_energy_at_equal_work() {
        // §4.4: the PD-compliant (cache-bloated) design raises static and
        // dynamic power.
        let w = WorkloadConfig::paper_default();
        let m = ModelConfig::gpt3_175b();
        let p = PowerModel::n7();
        let lean = DeviceConfig::builder()
            .core_count(103)
            .lanes_per_core(2)
            .l1_kib_per_core(192)
            .l2_mib(32)
            .hbm_bandwidth_tb_s(3.2)
            .build()
            .unwrap();
        let fat = lean.to_builder().l1_kib_per_core(1024).l2_mib(48).build().unwrap();
        let e_lean = layer_energy(
            &Simulator::new(SystemConfig::quad(lean).unwrap()),
            &m,
            &w,
            w.decode_phase(),
            &p,
        );
        let e_fat = layer_energy(
            &Simulator::new(SystemConfig::quad(fat).unwrap()),
            &m,
            &w,
            w.decode_phase(),
            &p,
        );
        assert!(e_fat.node_j > e_lean.node_j, "{} vs {}", e_fat.node_j, e_lean.node_j);
    }
}
