//! Simulator calibration parameters.


/// Tunable constants of the analytical model.
///
/// Defaults are calibrated so the modeled A100 4-device node lands near
/// the paper's anchor points (GPT-3 per-layer TTFT ≈ 280 ms,
/// TBT ≈ 1.44 ms). They encode well-known GPU system effects rather than
/// free fudge factors:
///
/// * `dram_efficiency` — achievable fraction of peak HBM bandwidth for
///   streaming accesses.
/// * `dram_latency_s` — lumped access latency that throttles small
///   transfers (the bandwidth ramp).
/// * `op_overhead_s` — per-operator launch/scheduling overhead (kernel
///   launch analogue); dominant for decode where each op is tiny.
/// * `l2_bytes_per_core_cycle` — global-buffer port bandwidth per core.
/// * `allreduce_step_latency_s` — per-hop latency of the ring collective.
/// * `l1_usable_fraction` — fraction of the local buffer available for
///   the active tile (the rest double-buffers the next one).
/// * `l2_usable_fraction` — fraction of the global buffer usable for
///   blocking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Achievable fraction of peak DRAM bandwidth (0..=1).
    pub dram_efficiency: f64,
    /// Lumped DRAM access latency in seconds (ramp for small transfers).
    pub dram_latency_s: f64,
    /// Per-operator launch/scheduling overhead in seconds.
    pub op_overhead_s: f64,
    /// L2 (global buffer) port bandwidth per lane, bytes per cycle.
    pub l2_bytes_per_lane_cycle: f64,
    /// Per-step latency of ring collectives in seconds.
    pub allreduce_step_latency_s: f64,
    /// Fraction of L1 usable for the active tile (rest double-buffers).
    pub l1_usable_fraction: f64,
    /// Fraction of L2 usable for blocking and operand forwarding.
    pub l2_usable_fraction: f64,
}

impl SimParams {
    /// The calibrated defaults used throughout the reproduction.
    #[must_use]
    pub fn calibrated() -> Self {
        SimParams {
            dram_efficiency: 0.75,
            dram_latency_s: 0.5e-6,
            op_overhead_s: 15e-6,
            l2_bytes_per_lane_cycle: 16.0,
            allreduce_step_latency_s: 2e-6,
            l1_usable_fraction: 0.5,
            l2_usable_fraction: 0.9,
        }
    }

    /// An idealised machine: full bandwidth, no latency, no overheads.
    /// Useful for isolating single mechanisms in tests.
    #[must_use]
    pub fn ideal() -> Self {
        SimParams {
            dram_efficiency: 1.0,
            dram_latency_s: 0.0,
            op_overhead_s: 0.0,
            l2_bytes_per_lane_cycle: 1e9,
            allreduce_step_latency_s: 0.0,
            l1_usable_fraction: 1.0,
            l2_usable_fraction: 1.0,
        }
    }

    /// Effective DRAM bandwidth in bytes/s for a transfer of `bytes` at a
    /// peak of `peak_gb_s`, applying the streaming efficiency and the
    /// latency ramp `bytes / (bytes + latency × BW)`.
    #[must_use]
    pub fn effective_dram_bw(&self, peak_gb_s: f64, bytes: f64) -> f64 {
        let peak = peak_gb_s * 1e9 * self.dram_efficiency;
        if bytes <= 0.0 {
            return peak;
        }
        let ramp_bytes = self.dram_latency_s * peak;
        peak * bytes / (bytes + ramp_bytes)
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_defaults_are_sane() {
        let p = SimParams::calibrated();
        assert!(p.dram_efficiency > 0.5 && p.dram_efficiency <= 1.0);
        assert!(p.l1_usable_fraction > 0.0 && p.l1_usable_fraction <= 1.0);
    }

    #[test]
    fn small_transfers_see_reduced_bandwidth() {
        let p = SimParams::calibrated();
        let big = p.effective_dram_bw(2000.0, 1e9);
        let small = p.effective_dram_bw(2000.0, 1e5);
        assert!(small < big);
        assert!(big <= 2000.0e9);
    }

    #[test]
    fn ideal_params_hit_peak() {
        let p = SimParams::ideal();
        let bw = p.effective_dram_bw(2000.0, 1e3);
        assert!((bw - 2000.0e9).abs() / 2000.0e9 < 1e-9);
    }
}
