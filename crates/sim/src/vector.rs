//! Vector-unit operator cost model.
//!
//! Softmax, norms, activations and residuals have arithmetic intensities
//! of a few FLOPs per byte — far below any device's compute/bandwidth
//! ratio — so they run at memory speed (§3.1, citing the LLM roofline
//! literature). Small intermediates are forwarded through the L2.

use crate::params::SimParams;
use acs_hw::DeviceConfig;
use acs_llm::VectorOp;

/// Cost components of one vector operator on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorCost {
    /// Vector-unit busy time (s).
    pub compute_s: f64,
    /// Global-buffer port time (s).
    pub l2_s: f64,
    /// DRAM streaming time (s).
    pub dram_s: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

impl VectorCost {
    /// Modelled latency (phases overlap; slowest wins).
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.compute_s.max(self.l2_s).max(self.dram_s)
    }
}

/// The on-chip half of a vector op's cost: ALU busy time plus
/// global-buffer port time. Reads only compute-side device parameters
/// (vector width, lanes, cores, frequency, dtype), so it can be memoized
/// per compute dependency key across a sweep (see `acs_sim::legs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorComputeLeg {
    /// Vector-unit busy time (s).
    pub compute_s: f64,
    /// Global-buffer port time (s).
    pub l2_s: f64,
}

/// The off-chip half of a vector op's cost: DRAM traffic after L2
/// forwarding. Reads only memory-side device parameters (HBM bandwidth,
/// dtype) plus the scheduler's forwarding fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorMemoryLeg {
    /// DRAM streaming time (s).
    pub dram_s: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// Price the compute/L2 leg of one vector operator.
#[must_use]
pub fn vector_compute_leg(
    op: &VectorOp,
    device: &DeviceConfig,
    params: &SimParams,
) -> VectorComputeLeg {
    let dt = u64::from(device.datatype().bytes());
    let compute_s = op.flops() / device.peak_vector_flops();
    let bytes = op.bytes(dt);
    let l2_bw = f64::from(device.core_count())
        * f64::from(device.lanes_per_core())
        * params.l2_bytes_per_lane_cycle
        * device.frequency_ghz()
        * 1e9;
    let l2_s = bytes / l2_bw;
    VectorComputeLeg { compute_s, l2_s }
}

/// Price the DRAM leg of one vector operator. `forward` is the fraction
/// of its traffic served by the L2 instead of DRAM.
#[must_use]
pub fn vector_memory_leg(
    op: &VectorOp,
    device: &DeviceConfig,
    params: &SimParams,
    forward: f64,
) -> VectorMemoryLeg {
    let dt = u64::from(device.datatype().bytes());
    let bytes = op.bytes(dt);
    let dram_bytes = bytes * (1.0 - forward.clamp(0.0, 1.0));
    let dram_s =
        dram_bytes / params.effective_dram_bw(device.hbm().bandwidth_gb_s, dram_bytes);
    VectorMemoryLeg { dram_s, dram_bytes }
}

/// Price one vector operator: the composition of [`vector_compute_leg`]
/// and [`vector_memory_leg`] — the legs *are* the cost model, so the
/// factored sweep path and this per-op API cannot drift. `forward` is
/// the fraction of its traffic served by the L2 instead of DRAM.
#[must_use]
pub fn vector_cost(
    op: &VectorOp,
    device: &DeviceConfig,
    params: &SimParams,
    forward: f64,
) -> VectorCost {
    let compute = vector_compute_leg(op, device, params);
    let memory = vector_memory_leg(op, device, params, forward);
    VectorCost {
        compute_s: compute.compute_s,
        l2_s: compute.l2_s,
        dram_s: memory.dram_s,
        dram_bytes: memory.dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_llm::VectorKind;

    fn softmax(elements: u64) -> VectorOp {
        VectorOp { name: "softmax", kind: VectorKind::Softmax, elements }
    }

    #[test]
    fn large_softmax_is_dram_bound() {
        // Prefill-sized softmax: 3.2e9 elements.
        let op = softmax(3_221_225_472);
        let c = vector_cost(&op, &DeviceConfig::a100_like(), &SimParams::calibrated(), 0.0);
        assert!(c.dram_s > c.compute_s);
        assert!(c.dram_s > 1e-3, "multi-ms: {}", c.dram_s);
    }

    #[test]
    fn forwarded_small_op_avoids_dram() {
        let op = softmax(1_572_864); // decode-sized
        let c = vector_cost(&op, &DeviceConfig::a100_like(), &SimParams::calibrated(), 1.0);
        assert_eq!(c.dram_bytes, 0.0);
        assert!(c.time_s() < 50e-6, "fast: {}", c.time_s());
    }

    #[test]
    fn time_scales_linearly_with_elements_when_dram_bound() {
        let p = SimParams::calibrated();
        let d = DeviceConfig::a100_like();
        let c1 = vector_cost(&softmax(1 << 28), &d, &p, 0.0);
        let c2 = vector_cost(&softmax(1 << 29), &d, &p, 0.0);
        let ratio = c2.time_s() / c1.time_s();
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn memory_bandwidth_speeds_up_vector_ops() {
        let p = SimParams::calibrated();
        let slow = DeviceConfig::a100_like();
        let fast = slow.to_builder().hbm_bandwidth_tb_s(3.2).build().unwrap();
        let op = softmax(3_221_225_472);
        assert!(vector_cost(&op, &fast, &p, 0.0).time_s() < vector_cost(&op, &slow, &p, 0.0).time_s());
    }
}
