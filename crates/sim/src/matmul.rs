//! Systolic-array matmul cost model.
//!
//! The model mirrors the mechanisms LLMCompass captures:
//!
//! 1. **L1-driven tiling.** Each lane holds an activation panel of `m_t`
//!    rows, the current weight tile (double-buffered) and an FP32
//!    accumulator slice in its share of the core's local buffer. Larger
//!    L1 ⇒ taller panels ⇒ less fill/drain overhead per weight tile:
//!    `eff_fill = m_t / (m_t + DIMX + DIMY)`.
//! 2. **Padding.** Contraction and output dimensions that are not
//!    multiples of the array dimensions waste MAC slots.
//! 3. **Wave quantisation.** Work is scheduled in waves of
//!    `cores × lanes` tiles; a ragged final wave idles arrays.
//! 4. **L2 blocking.** When neither operand fits in the global buffer,
//!    one of them is re-streamed from DRAM per panel; the model picks the
//!    cheaper re-use direction.

use crate::params::SimParams;
use acs_hw::DeviceConfig;
use acs_llm::{MatmulKind, MatmulOp};

/// Cost components of one matmul on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatmulCost {
    /// Systolic-array busy time (s), including efficiency losses.
    pub compute_s: f64,
    /// Global-buffer port time (s).
    pub l2_s: f64,
    /// DRAM streaming time (s).
    pub dram_s: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
    /// Activation-panel rows per tile (the L1-driven `m_t`).
    pub m_tile: u64,
    /// Combined systolic efficiency (fill/drain × padding × waves).
    pub efficiency: f64,
}

impl MatmulCost {
    /// The operator's modelled latency: compute, L2 and DRAM phases
    /// overlap, so the op runs at the pace of the slowest.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.compute_s.max(self.l2_s).max(self.dram_s)
    }
}

/// Rows of activation panel a lane can hold, given its L1 share.
///
/// Capacity: `m_t · DIMX` input slice (dtype), `m_t · DIMY` FP32
/// accumulators, and a double-buffered `DIMX × DIMY` weight tile.
#[must_use]
pub fn l1_m_tile(device: &DeviceConfig, params: &SimParams) -> u64 {
    let dt = f64::from(device.datatype().bytes());
    let dx = f64::from(device.systolic().x);
    let dy = f64::from(device.systolic().y);
    let l1_lane = f64::from(device.l1_kib_per_core()) * 1024.0
        / f64::from(device.lanes_per_core())
        * params.l1_usable_fraction;
    let weight_tile = 2.0 * dx * dy * dt;
    let per_row = dx * dt + dy * 4.0;
    (((l1_lane - weight_tile) / per_row).floor() as i64).max(1) as u64
}

/// The on-chip half of a matmul's cost: systolic-array busy time plus
/// global-buffer port time. Reads only the device's *compute-side*
/// parameters (systolic dims, lanes, cores, L1, frequency, dtype) — never
/// L2 capacity or HBM bandwidth — so it can be memoized per compute
/// dependency key across a sweep (see `acs_sim::legs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatmulComputeLeg {
    /// Systolic-array busy time (s), including efficiency losses.
    pub compute_s: f64,
    /// Global-buffer port time (s).
    pub l2_s: f64,
    /// Activation-panel rows per tile (the L1-driven `m_t`).
    pub m_tile: u64,
    /// Combined systolic efficiency (fill/drain × padding × waves).
    pub efficiency: f64,
}

/// The off-chip half of a matmul's cost: DRAM traffic under L2 blocking.
/// Reads only the device's *memory-side* parameters (L2 capacity, HBM
/// bandwidth, dtype) plus the scheduler's forwarding fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatmulMemoryLeg {
    /// DRAM streaming time (s).
    pub dram_s: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// Price the compute/L2 leg of one matmul (mechanisms 1–3 of the module
/// docs, plus the global-buffer port model, which needs the leg's `m_t`).
#[must_use]
pub fn matmul_compute_leg(
    op: &MatmulOp,
    device: &DeviceConfig,
    params: &SimParams,
) -> MatmulComputeLeg {
    let dt = u64::from(device.datatype().bytes());
    let dx = u64::from(device.systolic().x);
    let dy = u64::from(device.systolic().y);
    let arrays =
        u64::from(device.core_count()) * u64::from(device.lanes_per_core());
    let freq = device.frequency_ghz() * 1e9;

    // Instances sharing a B operand (a grouped-query attention group) are
    // packed into the M dimension, as real GQA kernels do — the group's
    // query rows stream through the array against the shared K/V tile.
    let group = op.b_shared_by.max(1);
    let m_packed = op.m * group;
    let count_packed = op.count.div_ceil(group);

    // --- compute ---
    let m_cap = l1_m_tile(device, params);
    let n_tiles = op.n.div_ceil(dy);
    // Panels subdivide below the L1 cap when that is needed to occupy
    // every array (small batched ops on wide machines).
    let base_units = (count_packed * n_tiles).max(1);
    let splits_wanted = arrays.div_ceil(base_units);
    let m_t = m_cap.min(m_packed.div_ceil(splits_wanted)).max(1);
    let m_tiles = m_packed.div_ceil(m_t);
    let eff_fill = if m_tiles == 1 {
        // The whole activation panel is L1-resident: the double-buffered
        // weight slot lets consecutive weight tiles stream through the
        // array back-to-back (TPU-style seamless weight switching), so the
        // fill/drain bubble is paid once per n-sweep, not per tile.
        let stream = (m_packed * n_tiles) as f64;
        stream / (stream + (dx + dy) as f64)
    } else {
        // Panels swap: every weight tile pays the pipeline fill/drain.
        m_t as f64 / (m_t + dx + dy) as f64
    };
    let eff_k = op.k as f64 / (op.k.div_ceil(dx) * dx) as f64;
    let eff_n = op.n as f64 / (op.n.div_ceil(dy) * dy) as f64;
    let tiles = count_packed * n_tiles * m_tiles;
    let waves = tiles.div_ceil(arrays);
    let eff_par = tiles as f64 / (waves * arrays) as f64;
    let efficiency = eff_fill * eff_k * eff_n * eff_par;
    let peak_macs_per_s = (arrays * dx * dy) as f64 * freq;
    let compute_s = op.macs() as f64 / peak_macs_per_s / efficiency;

    // --- L2 port traffic ---
    let a_bytes = op.a_bytes(dt) as f64;
    let b_bytes = op.b_bytes(dt) as f64;
    let out_bytes = op.out_bytes(dt) as f64;
    let cores = u64::from(device.core_count());
    // Cores hold distinct activation panels and sweep the weights; the
    // weight stream repeats once per panel generation.
    let sweeps = (op.count * op.m).div_ceil(m_t * cores).max(1);
    let l2_bytes = match op.kind {
        MatmulKind::Weight => a_bytes + b_bytes * sweeps as f64 + out_bytes,
        MatmulKind::Activation => a_bytes + b_bytes + out_bytes,
    };
    let l2_bw = arrays as f64 * params.l2_bytes_per_lane_cycle * freq;
    let l2_s = l2_bytes / l2_bw;

    MatmulComputeLeg { compute_s, l2_s, m_tile: m_t, efficiency }
}

/// Price the DRAM leg of one matmul (mechanism 4 of the module docs).
///
/// `forward_in` / `forward_out` are the fractions of the `A` operand /
/// output that are forwarded through the L2 instead of touching DRAM
/// (producer–consumer locality, computed by the layer scheduler).
#[must_use]
pub fn matmul_memory_leg(
    op: &MatmulOp,
    device: &DeviceConfig,
    params: &SimParams,
    forward_in: f64,
    forward_out: f64,
) -> MatmulMemoryLeg {
    let dt = u64::from(device.datatype().bytes());
    let dtf = dt as f64;
    let a_bytes = op.a_bytes(dt) as f64;
    let b_bytes = op.b_bytes(dt) as f64;
    let out_bytes = op.out_bytes(dt) as f64;

    // --- DRAM traffic with L2 blocking ---
    let l2_use = f64::from(device.l2_mib()) * 1024.0 * 1024.0 * params.l2_usable_fraction;
    let forward_in = forward_in.clamp(0.0, 1.0);
    let forward_out = forward_out.clamp(0.0, 1.0);
    let a_first = a_bytes * (1.0 - forward_in);
    let out_dram = out_bytes * (1.0 - forward_out);
    let dram_bytes = match op.kind {
        MatmulKind::Activation => a_first + b_bytes + out_dram,
        MatmulKind::Weight => {
            if b_bytes <= l2_use || a_bytes <= l2_use {
                // One operand is L2-resident: everything streams once.
                a_first + b_bytes + out_dram
            } else {
                let half = l2_use / 2.0;
                let panel = (half / (op.k as f64 * dtf)).max(1.0);
                // Option 1: keep a weight panel resident, re-stream A.
                let a_rereads = (op.n as f64 / panel).ceil().max(1.0);
                let opt1 = a_first + a_bytes * (a_rereads - 1.0) + b_bytes;
                // Option 2: keep an activation panel resident, re-stream B.
                let b_rereads = ((op.count * op.m) as f64 / panel).ceil().max(1.0);
                let opt2 = a_first + b_bytes * b_rereads;
                opt1.min(opt2) + out_dram
            }
        }
    };
    let dram_s =
        dram_bytes / params.effective_dram_bw(device.hbm().bandwidth_gb_s, dram_bytes);

    MatmulMemoryLeg { dram_s, dram_bytes }
}

/// Price one matmul operator: the composition of
/// [`matmul_compute_leg`] and [`matmul_memory_leg`] — the legs *are* the
/// cost model, so the factored sweep path and this per-op API cannot
/// drift.
///
/// `forward_in` / `forward_out` are the fractions of the `A` operand /
/// output that are forwarded through the L2 instead of touching DRAM
/// (producer–consumer locality, computed by the layer scheduler).
#[must_use]
pub fn matmul_cost(
    op: &MatmulOp,
    device: &DeviceConfig,
    params: &SimParams,
    forward_in: f64,
    forward_out: f64,
) -> MatmulCost {
    let compute = matmul_compute_leg(op, device, params);
    let memory = matmul_memory_leg(op, device, params, forward_in, forward_out);
    MatmulCost {
        compute_s: compute.compute_s,
        l2_s: compute.l2_s,
        dram_s: memory.dram_s,
        dram_bytes: memory.dram_bytes,
        m_tile: compute.m_tile,
        efficiency: compute.efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::SystolicDims;

    fn a100() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn weight_mm(m: u64, n: u64, k: u64) -> MatmulOp {
        MatmulOp { name: "w", m, n, k, count: 1, b_shared_by: 1, kind: MatmulKind::Weight }
    }

    #[test]
    fn a100_l1_allows_panels_of_a_few_hundred_rows() {
        let m_t = l1_m_tile(&a100(), &SimParams::calibrated());
        assert!(m_t > 150 && m_t < 400, "m_t = {m_t}");
    }

    #[test]
    fn small_l1_shrinks_panels_and_efficiency() {
        let small = a100().to_builder().l1_kib_per_core(32).build().unwrap();
        let p = SimParams::calibrated();
        let op = weight_mm(65536, 12288, 12288);
        let big_cost = matmul_cost(&op, &a100(), &p, 0.0, 0.0);
        let small_cost = matmul_cost(&op, &small, &p, 0.0, 0.0);
        assert!(small_cost.m_tile < big_cost.m_tile);
        assert!(small_cost.efficiency < big_cost.efficiency);
        assert!(small_cost.compute_s > big_cost.compute_s);
        // §5.3 anchor: 32 KiB L1 costs tens of percent of prefill speed.
        let ratio = small_cost.compute_s / big_cost.compute_s;
        assert!(ratio > 1.2 && ratio < 2.2, "ratio = {ratio}");
    }

    #[test]
    fn large_prefill_matmul_is_compute_bound_on_a100() {
        let op = weight_mm(65536, 12288, 12288);
        let c = matmul_cost(&op, &a100(), &SimParams::calibrated(), 0.0, 0.0);
        assert!(c.compute_s > c.dram_s, "compute {} dram {}", c.compute_s, c.dram_s);
        assert!(c.compute_s > c.l2_s);
        // MFU-style efficiency should be respectable.
        assert!(c.efficiency > 0.6, "eff = {}", c.efficiency);
    }

    #[test]
    fn decode_weight_matmul_is_dram_bound() {
        let op = weight_mm(32, 12288, 12288);
        let c = matmul_cost(&op, &a100(), &SimParams::calibrated(), 1.0, 1.0);
        assert!(c.dram_s > c.compute_s, "dram {} compute {}", c.dram_s, c.compute_s);
        // Streams the 302 MB weight roughly once.
        let weight_bytes = (12288u64 * 12288 * 2) as f64;
        assert!(c.dram_bytes < 1.1 * weight_bytes);
        assert!(c.dram_bytes > 0.9 * weight_bytes);
    }

    #[test]
    fn forwarding_removes_activation_traffic() {
        let op = weight_mm(32, 12288, 12288);
        let p = SimParams::calibrated();
        let none = matmul_cost(&op, &a100(), &p, 0.0, 0.0);
        let full = matmul_cost(&op, &a100(), &p, 1.0, 1.0);
        assert!(full.dram_bytes < none.dram_bytes);
    }

    #[test]
    fn bigger_arrays_pay_more_fill_drain() {
        let p = SimParams::calibrated();
        let op = weight_mm(65536, 12288, 12288);
        let d16 = a100();
        let d32 = a100()
            .to_builder()
            .systolic(SystolicDims::square(32))
            .core_count(27) // keep MAC count equal: 27*4*1024 = 108*4*256
            .build()
            .unwrap();
        let c16 = matmul_cost(&op, &d16, &p, 0.0, 0.0);
        let c32 = matmul_cost(&op, &d32, &p, 0.0, 0.0);
        assert!(
            c32.compute_s > c16.compute_s,
            "32x32 should be slower at equal TPP: {} vs {}",
            c32.compute_s,
            c16.compute_s
        );
    }

    #[test]
    fn padding_penalises_odd_dimensions() {
        let p = SimParams::calibrated();
        let aligned = weight_mm(4096, 4096, 4096);
        let ragged = weight_mm(4096, 4097, 4097);
        let ca = matmul_cost(&aligned, &a100(), &p, 0.0, 0.0);
        let cr = matmul_cost(&ragged, &a100(), &p, 0.0, 0.0);
        // Nearly identical work, strictly lower efficiency.
        assert!(cr.efficiency < ca.efficiency);
    }

    #[test]
    fn bigger_l2_reduces_dram_traffic_for_blocked_matmuls() {
        let p = SimParams::calibrated();
        let op = weight_mm(65536, 12288, 12288);
        let small_l2 = a100().to_builder().l2_mib(8).build().unwrap();
        let big_l2 = a100().to_builder().l2_mib(80).build().unwrap();
        let cs = matmul_cost(&op, &small_l2, &p, 0.0, 0.0);
        let cb = matmul_cost(&op, &big_l2, &p, 0.0, 0.0);
        assert!(cb.dram_bytes < cs.dram_bytes);
    }

    #[test]
    fn gemv_shaped_decode_attention_has_low_efficiency() {
        let op = MatmulOp {
            name: "attn",
            m: 1,
            n: 2048,
            k: 128,
            count: 768,
            b_shared_by: 1,
            kind: MatmulKind::Activation,
        };
        let c = matmul_cost(&op, &a100(), &SimParams::calibrated(), 1.0, 1.0);
        // The resident-panel seamless stream keeps decode attention from
        // becoming compute-bound: the KV-cache read dominates.
        assert!(c.dram_s > c.compute_s, "dram {} compute {}", c.dram_s, c.compute_s);
        // And the op stays tiny in absolute terms.
        assert!(c.time_s() < 1e-3);
    }

    #[test]
    fn time_is_max_of_components() {
        let op = weight_mm(1024, 1024, 1024);
        let c = matmul_cost(&op, &a100(), &SimParams::calibrated(), 0.0, 0.0);
        assert!((c.time_s() - c.compute_s.max(c.l2_s).max(c.dram_s)).abs() < 1e-18);
    }
}
