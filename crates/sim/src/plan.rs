//! Plan-then-execute layer simulation.
//!
//! [`crate::Simulator::simulate_layer`] lowers the model's operator graph
//! on every call, but the graph — and the per-operator operand sizes that
//! feed the L2 forwarding model — depend only on `(model, workload,
//! phase, device_count, dtype)`. A DSE sweep holds all five fixed while
//! varying the device's *architectural* parameters, so thousands of
//! points rebuild an identical graph. A [`LayerPlan`] hoists that
//! invariant work out of the hot loop: build it once per sweep (one per
//! phase × dtype), then execute it per point with
//! [`crate::Simulator::simulate_planned`], which only prices operators.
//!
//! Execution is bit-identical to the per-call API because the per-call
//! API *is* the planned path: `simulate_layer` lowers a single-use plan
//! and runs the same pricing loop. The plan precomputes exactly the
//! values the loop would have derived — nothing about the arithmetic
//! changes, only when the inputs are computed.
//!
//! Plans are content-addressed through [`acs_llm::LayerGraph::plan_key`]:
//! [`plan_digest`] gives cache layers (the DSE evaluation cache, the
//! serving step-cost cache, the query service's response cache) a cheap
//! digest covering the model, workload, phase, parallelism, and dtype
//! without serialising each component separately.

use crate::latency::Simulator;
use acs_cache::{CacheKey, CacheStats, ShardedCache};
use acs_errors::AcsError;
use acs_llm::{InferencePhase, LayerGraph, ModelConfig, Operator, WorkloadConfig};
use std::sync::Arc;

/// Precomputed operand byte sizes for one operator: the inputs of the L2
/// forwarding model, and the only dtype-dependent quantities the pricing
/// loop consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OpBytes {
    /// Producer-side tensor bytes (matmul A operand / vector operand).
    pub(crate) a: f64,
    /// Consumer-side tensor bytes (matmul output; zero otherwise).
    pub(crate) out: f64,
}

/// A reusable, immutable lowering of one Transformer layer: the operator
/// graph plus the precomputed operand sizes, tagged with the device count
/// and operand dtype it was built for so a mismatched simulator can be
/// rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    graph: LayerGraph,
    op_bytes: Vec<OpBytes>,
    device_count: u32,
    dtype_bytes: u32,
    // Copied out of `graph` at build time: the sweep hot path folds it
    // into every point's comm-leg key, and a flat field spares the
    // pointer chase into the graph header.
    expert_parallel: u32,
}

impl LayerPlan {
    /// Build a plan, validating the tensor-parallel degree.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when `device_count` is zero or
    /// does not divide the model's attention-head count.
    pub fn build(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        device_count: u32,
        dtype_bytes: u32,
    ) -> Result<Self, AcsError> {
        let graph = LayerGraph::try_build(model, workload, phase, device_count)?;
        Ok(Self::from_graph(graph, device_count, dtype_bytes))
    }

    /// [`LayerPlan::build`] under an explicit expert-parallel group:
    /// the lowered graph brackets the expert FFN with dispatch/combine
    /// all-to-alls when `expert_parallel > 1`. An `expert_parallel` of 1
    /// delegates to [`LayerPlan::build`] outright, so single-group plans
    /// stay byte-identical to every plan the pre-scenario stack built —
    /// including its pinning of collective payload sizing to 2-byte
    /// operands. Wider groups size their collectives from the plan's
    /// actual dtype.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] on the same tensor-parallel
    /// degeneracies as [`LayerPlan::build`], and additionally when
    /// `expert_parallel` is zero, targets a dense model, or does not
    /// divide the expert count.
    pub fn build_parallel(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        device_count: u32,
        expert_parallel: u32,
        dtype_bytes: u32,
    ) -> Result<Self, AcsError> {
        if expert_parallel == 1 {
            return Self::build(model, workload, phase, device_count, dtype_bytes);
        }
        let graph = LayerGraph::try_build_parallel(
            model,
            workload,
            phase,
            device_count,
            expert_parallel,
            u64::from(dtype_bytes),
        )?;
        Ok(Self::from_graph(graph, device_count, dtype_bytes))
    }

    /// Plan for `sim`'s node and device dtype — what
    /// [`Simulator::simulate_layer`] would lower internally.
    ///
    /// # Errors
    ///
    /// See [`LayerPlan::build`].
    pub fn for_simulator(
        sim: &Simulator,
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
    ) -> Result<Self, AcsError> {
        Self::build(
            model,
            workload,
            phase,
            sim.system().device_count(),
            sim.system().device().datatype().bytes(),
        )
    }

    /// [`LayerPlan::build`] with the legacy panicking validation, for the
    /// infallible `simulate_layer` wrapper (which documents the panic).
    pub(crate) fn of_unchecked(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        device_count: u32,
        dtype_bytes: u32,
    ) -> Self {
        let graph = LayerGraph::build(model, workload, phase, device_count);
        Self::from_graph(graph, device_count, dtype_bytes)
    }

    fn from_graph(graph: LayerGraph, device_count: u32, dtype_bytes: u32) -> Self {
        let dt = u64::from(dtype_bytes);
        let op_bytes = graph
            .ops()
            .iter()
            .map(|op| match op {
                Operator::Matmul(m) => {
                    OpBytes { a: m.a_bytes(dt) as f64, out: m.out_bytes(dt) as f64 }
                }
                Operator::Vector(v) => OpBytes { a: v.bytes(dt), out: 0.0 },
                _ => OpBytes { a: 0.0, out: 0.0 },
            })
            .collect();
        let expert_parallel = graph.expert_parallel();
        LayerPlan { graph, op_bytes, device_count, dtype_bytes, expert_parallel }
    }

    /// The lowered operator graph.
    #[must_use]
    pub fn graph(&self) -> &LayerGraph {
        &self.graph
    }

    /// The phase the plan prices.
    #[must_use]
    pub fn phase(&self) -> InferencePhase {
        self.graph.phase()
    }

    /// The tensor-parallel device count the plan was lowered for.
    #[must_use]
    pub fn device_count(&self) -> u32 {
        self.device_count
    }

    /// The operand size (bytes) the plan's byte counts assume.
    #[must_use]
    pub fn dtype_bytes(&self) -> u32 {
        self.dtype_bytes
    }

    /// The expert-parallel group size the plan was lowered for (1 for
    /// dense and single-group MoE plans).
    #[must_use]
    pub fn expert_parallel(&self) -> u32 {
        self.expert_parallel
    }

    pub(crate) fn op_bytes(&self) -> &[OpBytes] {
        &self.op_bytes
    }
}

/// Content digest of a plan's defining inputs: the FNV-1a digest of
/// [`LayerGraph::plan_key`]'s canonical form. Infallible and cheap (one
/// short format plus a hash) — no graph is lowered — so cache-key
/// derivation can embed it unconditionally. Render with
/// [`CacheKey::digest_hex`] when composing into JSON keys.
#[must_use]
pub fn plan_digest(
    model: &ModelConfig,
    workload: &WorkloadConfig,
    phase: InferencePhase,
    device_count: u32,
    dtype_bytes: u32,
) -> u64 {
    CacheKey::from_canonical(LayerGraph::plan_key(
        model,
        workload,
        phase,
        device_count,
        u64::from(dtype_bytes),
    ))
    .digest()
}

/// [`plan_digest`] under an explicit expert-parallel group. Digests at
/// `expert_parallel == 1` equal [`plan_digest`] bit-for-bit (the plan
/// key only grows an `|ep=` member beyond 1), so dense cache entries
/// survive the scenario axis unchanged.
#[must_use]
pub fn plan_digest_parallel(
    model: &ModelConfig,
    workload: &WorkloadConfig,
    phase: InferencePhase,
    device_count: u32,
    expert_parallel: u32,
    dtype_bytes: u32,
) -> u64 {
    CacheKey::from_canonical(LayerGraph::plan_key_parallel(
        model,
        workload,
        phase,
        device_count,
        expert_parallel,
        u64::from(dtype_bytes),
    ))
    .digest()
}

/// The plan pair one design evaluation consumes: prefill (TTFT) and
/// decode (TBT) for the same model/workload/node, with their content
/// digests precomputed for key derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlans {
    /// Prefill-phase plan (TTFT).
    pub prefill: LayerPlan,
    /// Decode-phase plan at the workload's decode context (TBT).
    pub decode: LayerPlan,
    prefill_digest: u64,
    decode_digest: u64,
}

impl EvalPlans {
    /// Build both phase plans for one model/workload/node/dtype.
    ///
    /// # Errors
    ///
    /// See [`LayerPlan::build`].
    pub fn build(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        device_count: u32,
        dtype_bytes: u32,
    ) -> Result<Self, AcsError> {
        Self::build_parallel(model, workload, device_count, 1, dtype_bytes)
    }

    /// [`EvalPlans::build`] under an explicit expert-parallel group (see
    /// [`LayerPlan::build_parallel`]).
    ///
    /// # Errors
    ///
    /// See [`LayerPlan::build_parallel`].
    pub fn build_parallel(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        device_count: u32,
        expert_parallel: u32,
        dtype_bytes: u32,
    ) -> Result<Self, AcsError> {
        let decode_phase = workload.decode_phase();
        Ok(EvalPlans {
            prefill: LayerPlan::build_parallel(
                model,
                workload,
                InferencePhase::Prefill,
                device_count,
                expert_parallel,
                dtype_bytes,
            )?,
            decode: LayerPlan::build_parallel(
                model,
                workload,
                decode_phase,
                device_count,
                expert_parallel,
                dtype_bytes,
            )?,
            prefill_digest: plan_digest_parallel(
                model,
                workload,
                InferencePhase::Prefill,
                device_count,
                expert_parallel,
                dtype_bytes,
            ),
            decode_digest: plan_digest_parallel(
                model,
                workload,
                decode_phase,
                device_count,
                expert_parallel,
                dtype_bytes,
            ),
        })
    }

    /// Content digest of the prefill plan's inputs.
    #[must_use]
    pub fn prefill_digest(&self) -> u64 {
        self.prefill_digest
    }

    /// Content digest of the decode plan's inputs.
    #[must_use]
    pub fn decode_digest(&self) -> u64 {
        self.decode_digest
    }
}

/// A bounded, sharable store of [`EvalPlans`], content-addressed by the
/// prefill plan key (which — given that the decode phase is derived from
/// the same workload — uniquely determines the pair). Long-lived services
/// use one store so repeated queries against the same model/workload
/// shape skip graph lowering entirely.
#[derive(Debug)]
pub struct PlanStore {
    inner: ShardedCache<Arc<EvalPlans>>,
}

impl PlanStore {
    /// A store bounded to `capacity` plan pairs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PlanStore { inner: ShardedCache::new(capacity) }
    }

    /// Fetch (or build and memoise) the plan pair for one evaluation
    /// shape.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when `device_count` cannot
    /// tensor-parallelise the model; errors are never cached.
    pub fn get_or_build(
        &self,
        model: &ModelConfig,
        workload: &WorkloadConfig,
        device_count: u32,
        dtype_bytes: u32,
    ) -> Result<Arc<EvalPlans>, AcsError> {
        let key = CacheKey::from_canonical(LayerGraph::plan_key(
            model,
            workload,
            InferencePhase::Prefill,
            device_count,
            u64::from(dtype_bytes),
        ));
        let (plans, _) = self.inner.get_or_try_insert(&key, || {
            EvalPlans::build(model, workload, device_count, dtype_bytes).map(Arc::new)
        })?;
        Ok(plans)
    }

    /// Hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Plan pairs currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the store holds no plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Default for PlanStore {
    fn default() -> Self {
        PlanStore::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::{DeviceConfig, SystemConfig};

    fn sim() -> Simulator {
        Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap())
    }

    #[test]
    fn planned_execution_is_bit_identical_to_per_call_api() {
        let s = sim();
        let model = ModelConfig::gpt3_175b();
        let work = WorkloadConfig::paper_default();
        for phase in [InferencePhase::Prefill, work.decode_phase()] {
            let plan = LayerPlan::for_simulator(&s, &model, &work, phase).unwrap();
            let planned = s.simulate_planned(&plan);
            let direct = s.simulate_layer(&model, &work, phase);
            assert_eq!(planned.total_s().to_bits(), direct.total_s().to_bits());
            assert_eq!(planned.ops().len(), direct.ops().len());
            for (a, b) in planned.ops().iter().zip(direct.ops()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
                assert_eq!(a.dram_bytes.to_bits(), b.dram_bytes.to_bits());
                assert_eq!(a.bound, b.bound);
            }
        }
    }

    #[test]
    fn plan_rejects_bad_tensor_parallel_degrees() {
        let model = ModelConfig::gpt3_175b();
        let work = WorkloadConfig::paper_default();
        for bad in [0, 5] {
            let err =
                LayerPlan::build(&model, &work, InferencePhase::Prefill, bad, 2).unwrap_err();
            assert_eq!(err.kind(), "invalid_config");
        }
    }

    #[test]
    fn mismatched_plans_are_rejected_by_the_checked_api() {
        let s = sim();
        let model = ModelConfig::gpt3_175b();
        let work = WorkloadConfig::paper_default();
        // Built for 8 devices, executed on a 4-device node.
        let other = LayerPlan::build(&model, &work, InferencePhase::Prefill, 8, 2).unwrap();
        assert_eq!(s.try_simulate_planned(&other).unwrap_err().kind(), "invalid_config");
        // Built for another dtype.
        let odd = LayerPlan::build(&model, &work, InferencePhase::Prefill, 4, 1).unwrap();
        assert_eq!(s.try_simulate_planned(&odd).unwrap_err().kind(), "invalid_config");
        // Phase mismatch: a decode plan cannot answer TTFT and vice versa.
        let prefill = LayerPlan::for_simulator(&s, &model, &work, InferencePhase::Prefill).unwrap();
        let decode = LayerPlan::for_simulator(&s, &model, &work, work.decode_phase()).unwrap();
        assert_eq!(s.try_ttft_planned(&decode).unwrap_err().kind(), "invalid_config");
        assert_eq!(s.try_tbt_planned(&prefill).unwrap_err().kind(), "invalid_config");
        // Matched plans agree with the model/workload API.
        let ttft = s.try_ttft_planned(&prefill).unwrap();
        let tbt = s.try_tbt_planned(&decode).unwrap();
        assert_eq!(ttft.to_bits(), s.try_ttft_s(&model, &work).unwrap().to_bits());
        assert_eq!(tbt.to_bits(), s.try_tbt_s(&model, &work).unwrap().to_bits());
    }

    #[test]
    fn plan_digests_separate_phase_dtype_and_node_shape() {
        let model = ModelConfig::gpt3_175b();
        let work = WorkloadConfig::paper_default();
        let base = plan_digest(&model, &work, InferencePhase::Prefill, 4, 2);
        assert_eq!(base, plan_digest(&model, &work, InferencePhase::Prefill, 4, 2));
        assert_ne!(base, plan_digest(&model, &work, work.decode_phase(), 4, 2));
        assert_ne!(base, plan_digest(&model, &work, InferencePhase::Prefill, 8, 2));
        assert_ne!(base, plan_digest(&model, &work, InferencePhase::Prefill, 4, 1));
        assert_ne!(
            base,
            plan_digest(&ModelConfig::llama3_8b(), &work, InferencePhase::Prefill, 4, 2)
        );
    }

    #[test]
    fn plan_store_memoises_pairs_and_skips_error_caching() {
        let store = PlanStore::new(16);
        let model = ModelConfig::gpt3_175b();
        let work = WorkloadConfig::paper_default();
        let a = store.get_or_build(&model, &work, 4, 2).unwrap();
        let b = store.get_or_build(&model, &work, 4, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat lookups share one plan pair");
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.len(), 1);
        assert_eq!(a.prefill.phase(), InferencePhase::Prefill);
        assert!(matches!(a.decode.phase(), InferencePhase::Decode { .. }));
        assert_eq!(a.prefill_digest(), plan_digest(&model, &work, InferencePhase::Prefill, 4, 2));
        // Invalid shapes surface typed errors and leave the store empty.
        assert_eq!(store.get_or_build(&model, &work, 5, 2).unwrap_err().kind(), "invalid_config");
        assert_eq!(store.len(), 1);
    }
}
