//! Tensor-parallel collective cost model.
//!
//! All-reduce uses the bandwidth-optimal ring algorithm: each device sends
//! and receives `2·(n−1)/n` of the payload over its device-to-device PHYs,
//! plus a per-step latency. The October 2022 rule's 600 GB/s device
//! bandwidth threshold bites exactly here.

use crate::params::SimParams;
use acs_hw::{SystemConfig, Topology};

/// Cost of one all-reduce across the tensor-parallel group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveCost {
    /// Wire time (s) limited by per-direction device bandwidth.
    pub wire_s: f64,
    /// Accumulated per-step latency (s).
    pub latency_s: f64,
}

impl CollectiveCost {
    /// Total modelled latency.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.wire_s + self.latency_s
    }
}

/// Price an all-reduce of `bytes` per device over `system`'s interconnect.
#[must_use]
pub fn allreduce_cost(bytes: u64, system: &SystemConfig, params: &SimParams) -> CollectiveCost {
    let n = f64::from(system.device_count());
    if system.device_count() <= 1 {
        return CollectiveCost { wire_s: 0.0, latency_s: 0.0 };
    }
    let uni_bw = system.device().phy().unidirectional_gb_s() * 1e9;
    let volume = 2.0 * (n - 1.0) / n * bytes as f64;
    let wire_s = volume / uni_bw;
    let steps = match system.topology() {
        Topology::FullyConnected => 2.0,
        // Ring and any future topology default to the ring step count.
        _ => 2.0 * (n - 1.0),
    };
    CollectiveCost { wire_s, latency_s: steps * params.allreduce_step_latency_s }
}

/// Price an all-to-all of `bytes` per device across a `group`-wide
/// expert-parallel group over `system`'s interconnect.
///
/// Each device keeps the `1/group` slice of its payload destined for its
/// own experts and exchanges the remaining `(group−1)/group` pairwise —
/// half the volume of a same-size all-reduce, since data crosses the
/// wire once instead of being reduced and re-broadcast. A fully
/// connected topology exchanges with every peer in one step; a ring
/// forwards through `group − 1` steps. Degenerate at one device exactly
/// like [`allreduce_cost`]: a group of 1 moves nothing and costs zero.
///
/// The group is an argument rather than read off the system because
/// expert parallelism spans a device group orthogonal to the
/// tensor-parallel node the [`SystemConfig`] describes.
#[must_use]
pub fn alltoall_cost(
    bytes: u64,
    group: u32,
    system: &SystemConfig,
    params: &SimParams,
) -> CollectiveCost {
    if group <= 1 {
        return CollectiveCost { wire_s: 0.0, latency_s: 0.0 };
    }
    let g = f64::from(group);
    let uni_bw = system.device().phy().unidirectional_gb_s() * 1e9;
    let volume = (g - 1.0) / g * bytes as f64;
    let wire_s = volume / uni_bw;
    let steps = match system.topology() {
        Topology::FullyConnected => 1.0,
        _ => g - 1.0,
    };
    CollectiveCost { wire_s, latency_s: steps * params.allreduce_step_latency_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::DeviceConfig;

    fn quad() -> SystemConfig {
        SystemConfig::quad(DeviceConfig::a100_like()).unwrap()
    }

    #[test]
    fn single_device_is_free() {
        let s = SystemConfig::new(DeviceConfig::a100_like(), 1).unwrap();
        let c = allreduce_cost(1 << 30, &s, &SimParams::calibrated());
        assert_eq!(c.time_s(), 0.0);
    }

    #[test]
    fn ring_allreduce_moves_three_quarters_twice() {
        // 4 devices: volume factor 2*(3/4) = 1.5 of the payload at 300 GB/s
        // per direction (600 GB/s aggregate).
        let c = allreduce_cost(1_000_000_000, &quad(), &SimParams::ideal());
        let expected = 1.5e9 / 300e9;
        assert!((c.wire_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn device_bandwidth_scales_wire_time() {
        let p = SimParams::calibrated();
        let fast_dev =
            DeviceConfig::a100_like().to_builder().device_bandwidth_gb_s(1200.0).build().unwrap();
        let fast = SystemConfig::quad(fast_dev).unwrap();
        let c_slow = allreduce_cost(1 << 30, &quad(), &p);
        let c_fast = allreduce_cost(1 << 30, &fast, &p);
        assert!((c_slow.wire_s / c_fast.wire_s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fully_connected_cuts_latency_not_bandwidth() {
        let p = SimParams::calibrated();
        let ring = quad();
        let fc = quad().with_topology(Topology::FullyConnected);
        let cr = allreduce_cost(1 << 20, &ring, &p);
        let cf = allreduce_cost(1 << 20, &fc, &p);
        assert!((cr.wire_s - cf.wire_s).abs() < 1e-15);
        assert!(cf.latency_s < cr.latency_s);
    }

    #[test]
    fn alltoall_degenerates_to_zero_at_one_device() {
        let p = SimParams::calibrated();
        let c = alltoall_cost(1 << 30, 1, &quad(), &p);
        assert_eq!(c.time_s(), 0.0);
        // Same degenerate behaviour as the all-reduce on a 1-device node.
        let solo = SystemConfig::new(DeviceConfig::a100_like(), 1).unwrap();
        assert_eq!(c.time_s(), allreduce_cost(1 << 30, &solo, &p).time_s());
    }

    #[test]
    fn alltoall_moves_half_an_allreduce() {
        // Same payload, same group: the exchange crosses the wire once,
        // the reduce-broadcast twice.
        let p = SimParams::ideal();
        let a2a = alltoall_cost(1 << 30, 4, &quad(), &p);
        let ar = allreduce_cost(1 << 30, &quad(), &p);
        assert!((a2a.wire_s * 2.0 - ar.wire_s).abs() / ar.wire_s < 1e-12);
    }

    #[test]
    fn alltoall_is_monotone_in_bytes_and_group() {
        let p = SimParams::calibrated();
        let s = quad();
        let mut last = 0.0;
        for bytes in [1u64 << 10, 1 << 20, 1 << 30] {
            let t = alltoall_cost(bytes, 8, &s, &p).time_s();
            assert!(t > last, "time must grow with payload");
            last = t;
        }
        let mut last = 0.0;
        for group in [1u32, 2, 4, 8, 16] {
            let t = alltoall_cost(1 << 20, group, &s, &p).time_s();
            assert!(t >= last, "time must not shrink as the group widens");
            last = t;
        }
    }

    #[test]
    fn decode_allreduce_is_microseconds() {
        // 32 tokens × 12288 × 2 B = 786 KiB.
        let c = allreduce_cost(786_432, &quad(), &SimParams::calibrated());
        assert!(c.time_s() < 50e-6, "time = {}", c.time_s());
    }
}
