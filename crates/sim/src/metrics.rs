//! Derived performance metrics.

use acs_hw::SystemConfig;
use acs_llm::{InferencePhase, LayerGraph, ModelConfig, WorkloadConfig};

use crate::Simulator;

/// Model FLOPs utilisation: observed throughput relative to the system's
/// theoretical peak (§3.1, after PaLM).
///
/// `flops` is the useful work performed in `time_s` on `system`.
#[must_use]
pub fn mfu(flops: f64, time_s: f64, system: &SystemConfig) -> f64 {
    if time_s <= 0.0 {
        return 0.0;
    }
    let peak = system.device().peak_flops() * f64::from(system.device_count());
    (flops / time_s) / peak
}

/// MFU of one simulated layer under `phase`.
#[must_use]
pub fn layer_mfu(
    sim: &Simulator,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    phase: InferencePhase,
) -> f64 {
    let lat = sim.simulate_layer(model, workload, phase);
    let graph = LayerGraph::build(model, workload, phase, sim.system().device_count());
    // Per-device matmul FLOPs × devices = useful work for the node.
    let flops = graph.matmul_flops() * f64::from(sim.system().device_count());
    mfu(flops, lat.total_s(), sim.system())
}

/// Steady-state decode throughput of the node in tokens/second:
/// the whole batch advances one token every `num_layers × TBT`.
#[must_use]
pub fn decode_throughput_tokens_per_s(
    sim: &Simulator,
    model: &ModelConfig,
    workload: &WorkloadConfig,
) -> f64 {
    let per_token_s = sim.full_model_tbt_s(model, workload);
    if per_token_s <= 0.0 {
        return 0.0;
    }
    workload.batch() as f64 / per_token_s
}

/// End-to-end request latency: full-model prefill plus one full-model
/// decode step per output token.
#[must_use]
pub fn request_latency_s(
    sim: &Simulator,
    model: &ModelConfig,
    workload: &WorkloadConfig,
) -> f64 {
    sim.full_model_ttft_s(model, workload)
        + workload.output_len() as f64 * sim.full_model_tbt_s(model, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::DeviceConfig;

    #[test]
    fn prefill_mfu_is_high_decode_mfu_is_low() {
        // §3.1: "LLM inference can achieve near peak theoretical FLOPs
        // during the compute-intensive prefill stage but suffer from low
        // utilization during the memory-intensive decoding stage."
        let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap());
        let gpt3 = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let prefill = layer_mfu(&sim, &gpt3, &w, InferencePhase::Prefill);
        let decode = layer_mfu(&sim, &gpt3, &w, w.decode_phase());
        assert!(prefill > 0.5, "prefill MFU = {prefill}");
        assert!(decode < 0.1, "decode MFU = {decode}");
    }

    #[test]
    fn mfu_handles_degenerate_inputs() {
        let system = SystemConfig::quad(DeviceConfig::a100_like()).unwrap();
        assert_eq!(mfu(1e12, 0.0, &system), 0.0);
        assert_eq!(mfu(0.0, 1.0, &system), 0.0);
    }

    #[test]
    fn throughput_and_request_latency_are_consistent() {
        let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap());
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let thpt = decode_throughput_tokens_per_s(&sim, &m, &w);
        // Batch 32 at ~1.4 ms/layer × 96 layers ≈ a couple hundred tok/s.
        assert!(thpt > 50.0 && thpt < 2000.0, "throughput = {thpt}");
        let req = request_latency_s(&sim, &m, &w);
        let ttft = sim.full_model_ttft_s(&m, &w);
        assert!(req > ttft, "request latency includes decoding");
        assert!(
            (req - ttft - 1024.0 * sim.full_model_tbt_s(&m, &w)).abs() < 1e-9,
            "decomposition holds"
        );
    }

    #[test]
    fn moe_decoding_is_slower_than_its_dense_twin() {
        // The MoE extension: expert weight traffic throttles decode.
        let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap());
        let w = WorkloadConfig::paper_default();
        let dense = ModelConfig::llama3_8b();
        let moe = ModelConfig::mixtral_8x7b();
        let tbt_dense = sim.tbt_s(&dense, &w);
        let tbt_moe = sim.tbt_s(&moe, &w);
        assert!(
            tbt_moe > 1.5 * tbt_dense,
            "MoE decode {tbt_moe} vs dense {tbt_dense}"
        );
        // Prefill is closer: compute only scales with top_k.
        let ttft_ratio = sim.ttft_s(&moe, &w) / sim.ttft_s(&dense, &w);
        assert!(ttft_ratio > 1.2 && ttft_ratio < 3.0, "ttft ratio = {ttft_ratio}");
    }

    #[test]
    fn mfu_never_exceeds_one_for_simulated_layers() {
        let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap());
        let w = WorkloadConfig::paper_default();
        for model in [ModelConfig::gpt3_175b(), ModelConfig::llama3_8b()] {
            for phase in [InferencePhase::Prefill, w.decode_phase()] {
                let v = layer_mfu(&sim, &model, &w, phase);
                assert!(v > 0.0 && v <= 1.0, "{} {phase}: MFU = {v}", model.name());
            }
        }
    }
}
