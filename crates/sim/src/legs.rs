//! Component-decomposed pricing: dependency keys and per-plan leg tables.
//!
//! A DSE sweep walks a dense Cartesian grid, but each priced cost
//! component reads only a *subset* of the swept axes: matmul compute
//! never sees `hbm_tb_s`, the DRAM model never sees `l1_kib`, and the
//! all-reduce sees nothing but the interconnect. The overlap
//! (`max(compute, l2, dram)`) is the only place the legs meet. This
//! module names each leg's dependency key — the exact tuple of device
//! parameters the leg's arithmetic reads — so a sweep evaluator can
//! memoize priced legs in small per-key tables and reduce a grid point
//! to a few lookups and a fused combine, instead of re-walking the
//! whole operator graph (the observation LLMCompass makes about
//! analytical-model sweeps being dominated by redundant re-pricing).
//!
//! The keys are *value-derived* (from the concrete [`DeviceConfig`], not
//! from the sweep axes), which buys two properties for free: a permuted
//! sweep specification hits the same table entries, and an injected
//! fault that perturbs a parameter perturbs the key, so faulted points
//! can never alias a healthy entry.
//!
//! Leg values are priced by the same functions the per-op API composes
//! ([`crate::matmul_cost`] is [`crate::matmul_compute_leg`] +
//! [`crate::matmul_memory_leg`]; same for vector ops), and the combine
//! loop in [`Simulator::try_ttft_factored`] replays the planned path's
//! accumulation and guard order exactly — so factored totals are
//! bit-identical to [`Simulator::try_ttft_planned`], NaN/infinity
//! propagation included. The guard contract is enforced per point, not
//! per table entry: a leg table stores whatever the cost model produced
//! (including non-finite values), and every point that reads it fails
//! with the same typed error the planned path would have produced.

use crate::collective::{allreduce_cost, alltoall_cost};
use crate::latency::{flush_layer_telemetry, op_class, Simulator};
use crate::matmul::{matmul_compute_leg, matmul_memory_leg};
use crate::plan::LayerPlan;
use crate::vector::{vector_compute_leg, vector_memory_leg};
use acs_errors::{guard, AcsError};
use acs_hw::{DataType, DeviceConfig, SystemConfig, Topology};
use acs_llm::{InferencePhase, Operator};

/// Dependency key of the compute/L2 leg: every device parameter the
/// systolic, vector-ALU, and global-buffer *port* models read. Two
/// devices with equal keys price identical compute legs for any plan.
///
/// The solved core count is part of the key on purpose: the sweep's TPP
/// Eq. 1 step derives cores from `(systolic_dim, lanes)`, so distinct
/// axis combinations can reach distinct core counts — the key captures
/// the solved value, not the axes that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComputeKey {
    /// Systolic rows.
    pub systolic_x: u32,
    /// Systolic columns.
    pub systolic_y: u32,
    /// Lanes per core.
    pub lanes_per_core: u32,
    /// Core count (solved from the TPP ceiling during candidate
    /// generation).
    pub core_count: u32,
    /// L1 per core in KiB (sets the activation-panel height).
    pub l1_kib: u32,
    /// Vector-unit width (the vector ops' peak FLOP/s).
    pub vector_width: u32,
    /// Core clock in GHz, bit-exact.
    pub frequency_ghz_bits: u64,
    /// Operand datatype (tile geometry and byte counts).
    pub datatype: DataType,
}

impl ComputeKey {
    /// The compute-leg key of one device.
    #[must_use]
    pub fn of(device: &DeviceConfig) -> Self {
        ComputeKey {
            systolic_x: device.systolic().x,
            systolic_y: device.systolic().y,
            lanes_per_core: device.lanes_per_core(),
            core_count: device.core_count(),
            l1_kib: device.l1_kib_per_core(),
            vector_width: device.vector_width(),
            frequency_ghz_bits: device.frequency_ghz().to_bits(),
            datatype: device.datatype(),
        }
    }
}

/// Dependency key of the DRAM leg: L2 capacity (blocking and the
/// forwarding fractions), HBM bandwidth, and the operand datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryKey {
    /// L2 capacity in MiB.
    pub l2_mib: u32,
    /// HBM bandwidth in GB/s, bit-exact.
    pub hbm_gb_s_bits: u64,
    /// Operand datatype (byte counts and blocking panel height).
    pub datatype: DataType,
}

impl MemoryKey {
    /// The memory-leg key of one device.
    #[must_use]
    pub fn of(device: &DeviceConfig) -> Self {
        MemoryKey {
            l2_mib: device.l2_mib(),
            hbm_gb_s_bits: device.hbm().bandwidth_gb_s.to_bits(),
            datatype: device.datatype(),
        }
    }
}

/// Dependency key of the collective leg: per-direction device bandwidth,
/// group size, and topology — all the wire model reads — plus the
/// operand datatype. The wire model itself is dtype-blind, but the byte
/// counts it prices come from the plan's all-reduce operators, and those
/// scale with the operand width; carrying the datatype keeps a leg table
/// keyed by `CommKey` safe across mixed-dtype sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommKey {
    /// One-direction device bandwidth in GB/s, bit-exact.
    pub unidirectional_gb_s_bits: u64,
    /// Tensor-parallel group size.
    pub device_count: u32,
    /// Interconnect topology (sets the latency step count).
    pub topology: Topology,
    /// Operand datatype (sizes the plan's collective payloads).
    pub datatype: DataType,
    /// Expert-parallel group size. The all-to-all operators of an
    /// expert-parallel plan carry their own group width (orthogonal to
    /// the tensor-parallel `device_count`), and their payload bytes are
    /// a function of that width — so two plans that differ only in
    /// expert parallelism price different comm legs and must not alias.
    /// Dense plans use 1, which [`CommKey::of`] sets, keeping every
    /// historical key value unchanged.
    pub expert_parallel: u32,
}

impl CommKey {
    /// The collective-leg key of one node (dense: `expert_parallel` 1).
    #[must_use]
    pub fn of(system: &SystemConfig) -> Self {
        CommKey {
            unidirectional_gb_s_bits: system.device().phy().unidirectional_gb_s().to_bits(),
            device_count: system.device_count(),
            topology: system.topology(),
            datatype: system.device().datatype(),
            expert_parallel: 1,
        }
    }
}

/// All three dependency keys of one node, derived in one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LegKeys {
    /// Compute/L2 leg key.
    pub compute: ComputeKey,
    /// DRAM leg key.
    pub memory: MemoryKey,
    /// Collective leg key.
    pub comm: CommKey,
}

impl LegKeys {
    /// The leg keys of one node.
    #[must_use]
    pub fn of(system: &SystemConfig) -> Self {
        LegKeys {
            compute: ComputeKey::of(system.device()),
            memory: MemoryKey::of(system.device()),
            comm: CommKey::of(system),
        }
    }
}

/// Priced compute/L2 leg of one planned operator (zero for operators
/// without an on-chip phase).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComputeLeg {
    /// Compute-phase time (s).
    pub compute_s: f64,
    /// Global-buffer-phase time (s).
    pub l2_s: f64,
}

/// Priced DRAM leg of one planned operator (zero for operators without a
/// DRAM phase).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryLeg {
    /// DRAM-phase time (s).
    pub dram_s: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// One plan priced into its three leg vectors, index-aligned with the
/// plan's operator list. Each vector depends only on its own
/// [`LegKeys`] component, so a sweep evaluator can cache them in
/// independent per-key tables.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLegs {
    /// Per-op compute/L2 legs (keyed by [`ComputeKey`]).
    pub compute: Vec<ComputeLeg>,
    /// Per-op DRAM legs (keyed by [`MemoryKey`]).
    pub memory: Vec<MemoryLeg>,
    /// Per-op collective times in seconds (keyed by [`CommKey`]).
    pub comm: Vec<f64>,
}

impl Simulator {
    /// Price every operator of `plan` into its leg vectors, walking the
    /// ops in plan order with each op's compute leg priced before its
    /// memory leg — the same visit order as the planned pricing loop, so
    /// any cost-model panic fires at the same operator on both paths.
    #[must_use]
    pub fn price_plan_legs(&self, plan: &LayerPlan) -> PlanLegs {
        let device = self.system().device();
        let params = self.params();
        let l2_use = self.l2_usable();
        let forward = |bytes: f64| -> f64 {
            if bytes <= 0.0 {
                1.0
            } else {
                (0.5 * l2_use / bytes).min(1.0)
            }
        };
        let ops = plan.graph().ops();
        let mut compute = Vec::with_capacity(ops.len());
        let mut memory = Vec::with_capacity(ops.len());
        let mut comm = Vec::with_capacity(ops.len());
        for (op, bytes) in ops.iter().zip(plan.op_bytes()) {
            match op {
                Operator::Matmul(m) => {
                    let c = matmul_compute_leg(m, device, params);
                    let fin = forward(bytes.a);
                    let fout = forward(bytes.out);
                    let d = matmul_memory_leg(m, device, params, fin, fout);
                    compute.push(ComputeLeg { compute_s: c.compute_s, l2_s: c.l2_s });
                    memory.push(MemoryLeg { dram_s: d.dram_s, dram_bytes: d.dram_bytes });
                    comm.push(0.0);
                }
                Operator::Vector(v) => {
                    let c = vector_compute_leg(v, device, params);
                    let f = forward(bytes.a);
                    let d = vector_memory_leg(v, device, params, f);
                    compute.push(ComputeLeg { compute_s: c.compute_s, l2_s: c.l2_s });
                    memory.push(MemoryLeg { dram_s: d.dram_s, dram_bytes: d.dram_bytes });
                    comm.push(0.0);
                }
                Operator::AllReduce(a) => {
                    let c = allreduce_cost(a.bytes, self.system(), params);
                    compute.push(ComputeLeg::default());
                    memory.push(MemoryLeg::default());
                    comm.push(c.time_s());
                }
                Operator::AllToAll(a) => {
                    let c = alltoall_cost(a.bytes, a.group, self.system(), params);
                    compute.push(ComputeLeg::default());
                    memory.push(MemoryLeg::default());
                    comm.push(c.time_s());
                }
                // Unknown future operators contribute only launch
                // overhead; their legs are zero.
                _ => {
                    compute.push(ComputeLeg::default());
                    memory.push(MemoryLeg::default());
                    comm.push(0.0);
                }
            }
        }
        PlanLegs { compute, memory, comm }
    }

    /// Factored total: combine pre-priced leg vectors into the layer
    /// total, enforcing the same numeric contract in the same per-op
    /// guard order as the planned path, with the same left-to-right
    /// accumulation and inline telemetry class sums — bit-identical to
    /// `checked_total_planned` by construction, at the cost of a few
    /// array reads per op instead of a full cost-model walk.
    fn checked_total_factored(
        &self,
        plan: &LayerPlan,
        compute: &[ComputeLeg],
        memory: &[MemoryLeg],
        comm: &[f64],
    ) -> Result<f64, AcsError> {
        self.check_plan(plan)?;
        let ops = plan.graph().ops();
        if compute.len() != ops.len() || memory.len() != ops.len() || comm.len() != ops.len() {
            return Err(AcsError::invalid_config(
                "legs.len",
                format!(
                    "leg tables of {}/{}/{} entries cannot price a {}-op plan",
                    compute.len(),
                    memory.len(),
                    comm.len(),
                    ops.len()
                ),
            ));
        }
        let overhead_s = self.params().op_overhead_s;
        let telemetry_on = acs_telemetry::enabled();
        let mut class_sums = [0.0f64; 4];
        let mut total = 0.0f64;
        // Zipping the (length-checked) slices lets the combine run
        // without per-op bounds checks — this loop is the entire
        // factored hot path, so even the checks show up.
        let legs = ops.iter().zip(compute).zip(memory).zip(comm);
        for (((op, c), d), wire) in legs {
            // Reconstruct exactly the planned path's per-op metrics: the
            // overlap combine for on-chip ops, wire time for collectives,
            // bare launch overhead otherwise.
            let (time_s, compute_s, dram_s, l2_s, comm_s, dram_bytes) = match op {
                Operator::Matmul(_) | Operator::Vector(_) => {
                    let time_s = c.compute_s.max(c.l2_s).max(d.dram_s) + overhead_s;
                    (time_s, c.compute_s, d.dram_s, c.l2_s, 0.0, d.dram_bytes)
                }
                Operator::AllReduce(_) | Operator::AllToAll(_) => {
                    (*wire + overhead_s, 0.0, 0.0, 0.0, *wire, 0.0)
                }
                _ => (overhead_s, 0.0, 0.0, 0.0, 0.0, 0.0),
            };
            let ctx = || format!("simulator.{}", op.name());
            guard::ensure_non_negative_with(ctx, "time_s", time_s)?;
            guard::ensure_non_negative_with(ctx, "compute_s", compute_s)?;
            guard::ensure_non_negative_with(ctx, "dram_s", dram_s)?;
            guard::ensure_non_negative_with(ctx, "l2_s", l2_s)?;
            guard::ensure_non_negative_with(ctx, "comm_s", comm_s)?;
            guard::ensure_non_negative_with(ctx, "dram_bytes", dram_bytes)?;
            if telemetry_on {
                if let Some(class) = op_class(op) {
                    class_sums[class] += time_s;
                }
            }
            total += time_s;
        }
        if telemetry_on {
            flush_layer_telemetry(&class_sums, plan.phase());
        }
        guard::ensure_finite("simulator.layer", "total_s", total)
    }

    /// Guarded TTFT from a prebuilt prefill plan and its pre-priced leg
    /// vectors (built by [`Simulator::price_plan_legs`], possibly via a
    /// sweep-shared per-key table). The factored counterpart of
    /// [`Simulator::try_ttft_planned`] — bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the plan is not a prefill
    /// plan for this node or the leg vectors do not match the plan, and
    /// [`AcsError::NonFinite`] when the latency is NaN, infinite, or
    /// non-positive.
    pub fn try_ttft_factored(
        &self,
        plan: &LayerPlan,
        compute: &[ComputeLeg],
        memory: &[MemoryLeg],
        comm: &[f64],
    ) -> Result<f64, AcsError> {
        if !matches!(plan.phase(), InferencePhase::Prefill) {
            return Err(AcsError::invalid_config(
                "plan.phase",
                "TTFT requires a prefill plan, got a decode plan",
            ));
        }
        let total = self.checked_total_factored(plan, compute, memory, comm)?;
        guard::ensure_positive("simulator", "ttft_s", total)
    }

    /// Guarded TBT from a prebuilt decode plan and its pre-priced leg
    /// vectors (see [`Simulator::try_ttft_factored`]).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the plan is not a decode
    /// plan for this node or the leg vectors do not match the plan, and
    /// [`AcsError::NonFinite`] when the latency is NaN, infinite, or
    /// non-positive.
    pub fn try_tbt_factored(
        &self,
        plan: &LayerPlan,
        compute: &[ComputeLeg],
        memory: &[MemoryLeg],
        comm: &[f64],
    ) -> Result<f64, AcsError> {
        if !matches!(plan.phase(), InferencePhase::Decode { .. }) {
            return Err(AcsError::invalid_config(
                "plan.phase",
                "TBT requires a decode plan, got a prefill plan",
            ));
        }
        let total = self.checked_total_factored(plan, compute, memory, comm)?;
        guard::ensure_positive("simulator", "tbt_s", total)
    }

    /// Convenience for tests and single-point callers: price the plan's
    /// legs and immediately combine them.
    ///
    /// # Errors
    ///
    /// See [`Simulator::try_ttft_factored`] / [`Simulator::try_tbt_factored`].
    pub fn try_total_factored(&self, plan: &LayerPlan) -> Result<f64, AcsError> {
        let legs = self.price_plan_legs(plan);
        match plan.phase() {
            InferencePhase::Prefill => {
                self.try_ttft_factored(plan, &legs.compute, &legs.memory, &legs.comm)
            }
            _ => self.try_tbt_factored(plan, &legs.compute, &legs.memory, &legs.comm),
        }
    }
}

/// How the factored combine treats one planned operator: the overlap
/// `max()` of its compute/memory legs, the collective wire time, or bare
/// launch overhead. Precompiled once per plan by [`CombineProgram::of`]
/// so a lattice evaluator never re-matches operator variants per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    /// Matmul or vector op: `max(compute, l2, dram) + overhead`.
    OnChip,
    /// All-reduce or all-to-all: `wire + overhead`.
    Comm,
    /// Anything else: launch overhead only.
    Other,
}

/// One operator vector of pre-fused per-op times, plus the proof
/// obligation its construction discharged.
///
/// `clean` records that every per-op guard of
/// [`Simulator::try_ttft_factored`]'s combine loop provably passes for
/// these values: each contributing leg component is finite and
/// non-negative, the launch overhead is finite and non-negative, and no
/// fused per-op time overflowed to infinity. When `clean` is true, a
/// combine over these values is bit-identical to the factored combine —
/// including the only remaining failure modes (a total that overflows to
/// infinity, or a non-positive total), which the final guards report
/// with the factored path's exact error shape. When `clean` is false, a
/// caller that needs bit-identical errors must fall back to the per-op
/// factored combine, which re-walks the guards and fails at the exact
/// operator the planned path would have.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedLegs {
    /// Per-op pre-fused times, index-aligned with the plan's operators.
    /// On-chip and overhead-only positions are populated in an on-chip
    /// vector; collective positions are populated in a comm vector (the
    /// respectively foreign positions hold 0.0 and are never read).
    pub values: Vec<f64>,
    /// Whether every hoisted per-op guard provably passes (see above).
    pub clean: bool,
}

/// A plan's combine loop, precompiled: per-op kinds, telemetry classes,
/// and the phase. Combining a grid point through
/// [`CombineProgram::try_ttft`] replays the factored path's left-to-right
/// accumulation over two pre-fused vectors — one that depends only on
/// the (compute, memory) dependency keys and one that depends only on
/// the comm key — so a sweep lattice can price each vector once per
/// distinct key tuple and reduce a point to `ops` additions.
#[derive(Debug, Clone)]
pub struct CombineProgram {
    phase: InferencePhase,
    kinds: Vec<OpKind>,
    /// Telemetry class per op (see `op_class`), applied only when
    /// telemetry is enabled so class sums match the factored path.
    class: Vec<Option<usize>>,
}

impl CombineProgram {
    /// Precompile the combine loop of one plan.
    #[must_use]
    pub fn of(plan: &LayerPlan) -> Self {
        let ops = plan.graph().ops();
        CombineProgram {
            phase: plan.phase(),
            kinds: ops
                .iter()
                .map(|op| match op {
                    Operator::Matmul(_) | Operator::Vector(_) => OpKind::OnChip,
                    Operator::AllReduce(_) | Operator::AllToAll(_) => OpKind::Comm,
                    _ => OpKind::Other,
                })
                .collect(),
            class: ops.iter().map(op_class).collect(),
        }
    }

    /// Number of operators in the compiled plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the compiled plan has no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The compiled plan's inference phase.
    #[must_use]
    pub fn phase(&self) -> InferencePhase {
        self.phase
    }

    /// Fuse the (compute, memory)-keyed legs into one per-op time vector:
    /// `max(compute, l2, dram) + overhead` at on-chip positions, bare
    /// `overhead` at overhead-only positions, 0.0 at collective positions
    /// (never read — the comm vector covers those). Establishes the
    /// `clean` obligation documented on [`FusedLegs`].
    #[must_use]
    pub fn fuse_onchip(
        &self,
        compute: &[ComputeLeg],
        memory: &[MemoryLeg],
        overhead_s: f64,
    ) -> FusedLegs {
        let n = self.kinds.len();
        if compute.len() != n || memory.len() != n {
            // A mismatched table cannot prove anything; the caller's slow
            // path reports the factored combine's typed length error.
            return FusedLegs { values: vec![0.0; n], clean: false };
        }
        let nonneg = |v: f64| v.is_finite() && v >= 0.0;
        let mut clean = nonneg(overhead_s);
        let mut values = Vec::with_capacity(n);
        for ((kind, c), d) in self.kinds.iter().zip(compute).zip(memory) {
            match kind {
                OpKind::OnChip => {
                    let fused = c.compute_s.max(c.l2_s).max(d.dram_s) + overhead_s;
                    clean = clean
                        && nonneg(c.compute_s)
                        && nonneg(c.l2_s)
                        && nonneg(d.dram_s)
                        && nonneg(d.dram_bytes)
                        && fused.is_finite();
                    values.push(fused);
                }
                OpKind::Comm => values.push(0.0),
                OpKind::Other => values.push(overhead_s),
            }
        }
        FusedLegs { values, clean }
    }

    /// Fuse the comm-keyed leg into one per-op time vector: `wire +
    /// overhead` at collective positions, 0.0 everywhere else (never
    /// read — the on-chip vector covers those). Establishes the `clean`
    /// obligation documented on [`FusedLegs`].
    #[must_use]
    pub fn fuse_comm(&self, comm: &[f64], overhead_s: f64) -> FusedLegs {
        let n = self.kinds.len();
        if comm.len() != n {
            return FusedLegs { values: vec![0.0; n], clean: false };
        }
        let nonneg = |v: f64| v.is_finite() && v >= 0.0;
        let mut clean = nonneg(overhead_s);
        let mut values = Vec::with_capacity(n);
        for (kind, wire) in self.kinds.iter().zip(comm) {
            match kind {
                OpKind::Comm => {
                    let t = *wire + overhead_s;
                    clean = clean && nonneg(*wire) && t.is_finite();
                    values.push(t);
                }
                _ => values.push(0.0),
            }
        }
        FusedLegs { values, clean }
    }

    /// The combine loop over two pre-fused vectors: the factored path's
    /// left-to-right accumulation and inline telemetry class sums, with
    /// the per-op guards hoisted into the vectors' `clean` obligation.
    /// Bit-identical to `checked_total_factored` when both vectors are
    /// clean, by construction: same additions, same order, same final
    /// guard.
    fn checked_total(&self, onchip: &[f64], comm: &[f64]) -> Result<f64, AcsError> {
        let n = self.kinds.len();
        if onchip.len() != n || comm.len() != n {
            return Err(AcsError::invalid_config(
                "legs.len",
                format!(
                    "fused vectors of {}/{} entries cannot price a {n}-op plan",
                    onchip.len(),
                    comm.len(),
                ),
            ));
        }
        let mut total = 0.0f64;
        if acs_telemetry::enabled() {
            let mut class_sums = [0.0f64; 4];
            for (i, kind) in self.kinds.iter().enumerate() {
                let time_s = if matches!(kind, OpKind::Comm) { comm[i] } else { onchip[i] };
                if let Some(class) = self.class[i] {
                    class_sums[class] += time_s;
                }
                total += time_s;
            }
            flush_layer_telemetry(&class_sums, self.phase);
        } else {
            // Branchless form of the select-and-add loop. Exactly one of
            // `onchip[i]` / `comm[i]` is populated per op — the foreign
            // position holds a literal +0.0 by construction of the
            // `fuse_*` vectors — and every populated clean value is
            // non-negative and finite, so `a + w` is the selected value
            // bit for bit (`x + 0.0 == x` for every such `x`, and a
            // populated `-0.0` adds into the non-negative accumulator
            // identically either way). The accumulation order is
            // unchanged: still one add per op, left to right.
            for (&a, &w) in onchip.iter().zip(comm) {
                total += a + w;
            }
        }
        guard::ensure_finite("simulator.layer", "total_s", total)
    }

    /// Guarded TTFT from pre-fused per-op vectors (see
    /// [`CombineProgram::fuse_onchip`] / [`CombineProgram::fuse_comm`]).
    /// Bit-identical to [`Simulator::try_ttft_factored`] when both
    /// vectors are `clean`; callers holding unclean vectors must use the
    /// factored combine instead to reproduce its per-op errors.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the program is not a
    /// prefill program or the vectors do not match it, and
    /// [`AcsError::NonFinite`] when the total is non-finite or
    /// non-positive.
    pub fn try_ttft(&self, onchip: &[f64], comm: &[f64]) -> Result<f64, AcsError> {
        if !matches!(self.phase, InferencePhase::Prefill) {
            return Err(AcsError::invalid_config(
                "plan.phase",
                "TTFT requires a prefill plan, got a decode plan",
            ));
        }
        let total = self.checked_total(onchip, comm)?;
        guard::ensure_positive("simulator", "ttft_s", total)
    }

    /// Guarded TBT from pre-fused per-op vectors (see
    /// [`CombineProgram::try_ttft`]).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the program is not a
    /// decode program or the vectors do not match it, and
    /// [`AcsError::NonFinite`] when the total is non-finite or
    /// non-positive.
    pub fn try_tbt(&self, onchip: &[f64], comm: &[f64]) -> Result<f64, AcsError> {
        if !matches!(self.phase, InferencePhase::Decode { .. }) {
            return Err(AcsError::invalid_config(
                "plan.phase",
                "TBT requires a decode plan, got a prefill plan",
            ));
        }
        let total = self.checked_total(onchip, comm)?;
        guard::ensure_positive("simulator", "tbt_s", total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_llm::{ModelConfig, WorkloadConfig};

    fn sim() -> Simulator {
        Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap())
    }

    fn plans(s: &Simulator) -> (LayerPlan, LayerPlan) {
        let model = ModelConfig::gpt3_175b();
        let work = WorkloadConfig::paper_default();
        (
            LayerPlan::for_simulator(s, &model, &work, InferencePhase::Prefill).unwrap(),
            LayerPlan::for_simulator(s, &model, &work, work.decode_phase()).unwrap(),
        )
    }

    #[test]
    fn factored_totals_are_bit_identical_to_planned() {
        let s = sim();
        let (prefill, decode) = plans(&s);
        let ttft = s.try_ttft_planned(&prefill).unwrap();
        let tbt = s.try_tbt_planned(&decode).unwrap();
        assert_eq!(s.try_total_factored(&prefill).unwrap().to_bits(), ttft.to_bits());
        assert_eq!(s.try_total_factored(&decode).unwrap().to_bits(), tbt.to_bits());
    }

    #[test]
    fn leg_vectors_align_with_the_plan() {
        let s = sim();
        let (prefill, _) = plans(&s);
        let legs = s.price_plan_legs(&prefill);
        let n = prefill.graph().ops().len();
        assert_eq!(legs.compute.len(), n);
        assert_eq!(legs.memory.len(), n);
        assert_eq!(legs.comm.len(), n);
        // Collectives carry no compute/memory legs and vice versa.
        for (op, ((c, m), &w)) in prefill
            .graph()
            .ops()
            .iter()
            .zip(legs.compute.iter().zip(&legs.memory).zip(&legs.comm))
        {
            match op {
                Operator::AllReduce(_) => {
                    assert_eq!((c.compute_s, m.dram_s), (0.0, 0.0));
                    assert!(w > 0.0);
                }
                Operator::Matmul(_) | Operator::Vector(_) => {
                    assert!(c.compute_s > 0.0);
                    assert_eq!(w, 0.0);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn mismatched_leg_lengths_are_typed_errors() {
        let s = sim();
        let (prefill, _) = plans(&s);
        let legs = s.price_plan_legs(&prefill);
        let err = s
            .try_ttft_factored(&prefill, &legs.compute[1..], &legs.memory, &legs.comm)
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_config");
    }

    #[test]
    fn keys_read_exactly_the_parameters_the_legs_read() {
        let base = DeviceConfig::a100_like();
        let quad = |d: DeviceConfig| SystemConfig::quad(d).unwrap();
        let k0 = LegKeys::of(&quad(base.clone()));
        // Memory-side change: compute key stable, memory key moves.
        let hbm = base.to_builder().hbm_bandwidth_tb_s(3.2).build().unwrap();
        let k_hbm = LegKeys::of(&quad(hbm));
        assert_eq!(k0.compute, k_hbm.compute);
        assert_ne!(k0.memory, k_hbm.memory);
        assert_eq!(k0.comm, k_hbm.comm);
        // Compute-side change: memory and comm keys stable.
        let l1 = base.to_builder().l1_kib_per_core(1024).build().unwrap();
        let k_l1 = LegKeys::of(&quad(l1));
        assert_ne!(k0.compute, k_l1.compute);
        assert_eq!(k0.memory, k_l1.memory);
        assert_eq!(k0.comm, k_l1.comm);
        // Interconnect change: only the comm key moves.
        let bw = base.to_builder().device_bandwidth_gb_s(900.0).build().unwrap();
        let k_bw = LegKeys::of(&quad(bw));
        assert_eq!(k0.compute, k_bw.compute);
        assert_eq!(k0.memory, k_bw.memory);
        assert_ne!(k0.comm, k_bw.comm);
    }

    #[test]
    fn fused_combine_is_bit_identical_to_factored() {
        let s = sim();
        let (prefill, decode) = plans(&s);
        let overhead = s.params().op_overhead_s;
        for (plan, want) in [
            (&prefill, s.try_ttft_planned(&prefill).unwrap()),
            (&decode, s.try_tbt_planned(&decode).unwrap()),
        ] {
            let legs = s.price_plan_legs(plan);
            let program = CombineProgram::of(plan);
            assert_eq!(program.len(), plan.graph().ops().len());
            let onchip = program.fuse_onchip(&legs.compute, &legs.memory, overhead);
            let comm = program.fuse_comm(&legs.comm, overhead);
            assert!(onchip.clean && comm.clean, "healthy legs must fuse clean");
            let got = match plan.phase() {
                InferencePhase::Prefill => program.try_ttft(&onchip.values, &comm.values),
                _ => program.try_tbt(&onchip.values, &comm.values),
            }
            .unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn fused_combine_rejects_wrong_phase_and_mismatched_vectors() {
        let s = sim();
        let (prefill, decode) = plans(&s);
        let overhead = s.params().op_overhead_s;
        let legs = s.price_plan_legs(&prefill);
        let program = CombineProgram::of(&prefill);
        let onchip = program.fuse_onchip(&legs.compute, &legs.memory, overhead);
        let comm = program.fuse_comm(&legs.comm, overhead);
        // Phase mismatch mirrors the factored path's error.
        let err = program.try_tbt(&onchip.values, &comm.values).unwrap_err();
        assert!(err.to_string().contains("TBT requires a decode plan"), "{err}");
        let err = CombineProgram::of(&decode)
            .try_ttft(&onchip.values, &comm.values)
            .unwrap_err();
        assert!(err.to_string().contains("TTFT requires a prefill plan"), "{err}");
        // Truncated vectors are a typed length error, never an OOB panic.
        let err = program.try_ttft(&onchip.values[1..], &comm.values).unwrap_err();
        assert!(err.to_string().contains("cannot price"), "{err}");
        // Mismatched leg tables fuse unclean instead of panicking.
        assert!(!program.fuse_onchip(&legs.compute[1..], &legs.memory, overhead).clean);
        assert!(!program.fuse_comm(&legs.comm[1..], overhead).clean);
    }

    #[test]
    fn unclean_legs_are_flagged_not_hidden() {
        let s = sim();
        let (prefill, _) = plans(&s);
        let program = CombineProgram::of(&prefill);
        let mut legs = s.price_plan_legs(&prefill);
        // A NaN compute leg on an on-chip op must poison cleanliness.
        let onchip_pos = prefill
            .graph()
            .ops()
            .iter()
            .position(|op| matches!(op, Operator::Matmul(_) | Operator::Vector(_)))
            .unwrap();
        legs.compute[onchip_pos].compute_s = f64::NAN;
        assert!(!program.fuse_onchip(&legs.compute, &legs.memory, 1e-6).clean);
        // Negative launch overhead poisons both vectors.
        let healthy = s.price_plan_legs(&prefill);
        assert!(!program.fuse_onchip(&healthy.compute, &healthy.memory, -1.0).clean);
        assert!(!program.fuse_comm(&healthy.comm, f64::INFINITY).clean);
    }

    #[test]
    fn equal_keys_imply_bit_equal_legs() {
        // Two differently named devices with identical parameters must
        // produce identical keys and identical leg vectors — the property
        // the sweep-level memoization relies on.
        let s1 = sim();
        let renamed = DeviceConfig::a100_like().to_builder().name("other").build().unwrap();
        let s2 = Simulator::new(SystemConfig::quad(renamed).unwrap());
        assert_eq!(LegKeys::of(s1.system()), LegKeys::of(s2.system()));
        let (prefill, _) = plans(&s1);
        assert_eq!(s1.price_plan_legs(&prefill), s2.price_plan_legs(&prefill));
    }
}
