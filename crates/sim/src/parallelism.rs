//! Tensor vs pipeline parallelism.
//!
//! The October 2022 rule throttled the device-to-device interconnect
//! (600 GB/s) on the theory that multi-device AI needs fat links. That is
//! true of *tensor* parallelism (two all-reduces per layer); *pipeline*
//! parallelism ships only a microbatch of activations across each stage
//! boundary and runs happily over thin links — at the price of decode
//! latency, since an autoregressive token must traverse every stage in
//! sequence. This module prices both mappings on the same node so the
//! policy question ("does capping the interconnect throttle the
//! workload?") can be answered quantitatively.

use crate::latency::Simulator;
use crate::params::SimParams;
use acs_errors::AcsError;
use acs_hw::SystemConfig;
use acs_llm::{pipeline_stage_layers, InferencePhase, ModelConfig, WorkloadConfig};

/// How a model is split across the node's devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Megatron-style: every layer split across all devices,
    /// all-reduces on the critical path.
    Tensor,
    /// Layer pipelining: contiguous layer blocks per device, activations
    /// handed across stage boundaries.
    Pipeline,
}

/// Full-model latencies under one mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingLatency {
    /// Mapping priced.
    pub parallelism: Parallelism,
    /// Full-model time-to-first-token, seconds.
    pub ttft_s: f64,
    /// Full-model per-token decode latency, seconds.
    pub tbt_s: f64,
    /// Steady-state decode throughput in tokens/s (pipeline parallelism
    /// overlaps independent request streams across stages).
    pub throughput_tokens_per_s: f64,
}

/// Price `model` on `system` under `parallelism`.
///
/// Pipeline mapping assumptions (documented, deliberately simple):
/// * stages hold `layers / devices` contiguous layers (layers assumed
///   divisible; remainders are absorbed into the last stage's count);
/// * prefill uses `devices` microbatches, so the pipeline bubble adds a
///   factor `(2·S − 1)/S` over perfectly overlapped stages;
/// * each stage boundary ships the microbatch activations
///   (`tokens × d_model × 2` bytes) over the per-direction link;
/// * decode cannot pipeline within one token (autoregression), so TBT is
///   the *sum* of stage times — but independent tokens of the batch keep
///   all stages busy, so throughput is set by one stage, not the sum.
#[must_use]
pub fn mapping_latency(
    system: &SystemConfig,
    params: SimParams,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    parallelism: Parallelism,
) -> MappingLatency {
    let devices = system.device_count();
    let layers = f64::from(model.num_layers());
    match parallelism {
        Parallelism::Tensor => {
            let sim = Simulator::with_params(system.clone(), params);
            let tbt = sim.tbt_s(model, workload) * layers;
            MappingLatency {
                parallelism,
                ttft_s: sim.ttft_s(model, workload) * layers,
                tbt_s: tbt,
                throughput_tokens_per_s: if tbt > 0.0 {
                    workload.batch() as f64 / tbt
                } else {
                    0.0
                },
            }
        }
        Parallelism::Pipeline => {
            // Per-layer costs on ONE device holding full-width layers.
            let single = SystemConfig::single(system.device().clone());
            let sim = Simulator::with_params(single, params);
            let s = f64::from(devices);
            let layer_prefill =
                sim.simulate_layer(model, workload, InferencePhase::Prefill).total_s();
            let layer_decode =
                sim.simulate_layer(model, workload, workload.decode_phase()).total_s();

            // Stage boundary transfer per microbatch: activations only.
            let micro_tokens =
                (workload.batch() * workload.input_len()) as f64 / s;
            let boundary_bytes = micro_tokens * model.d_model() as f64 * 2.0;
            let link = system.device().phy().unidirectional_gb_s() * 1e9;
            let boundary_s = boundary_bytes / link;

            // Prefill: S microbatches over S stages → bubble (2S−1)/S.
            let stage_prefill = layer_prefill * layers / s + boundary_s;
            let ttft = stage_prefill * (2.0 * s - 1.0) / s;

            // Decode: one token crosses every stage in sequence.
            let decode_boundary_bytes = workload.batch() as f64 * model.d_model() as f64 * 2.0;
            let stage_decode =
                layer_decode * layers / s + decode_boundary_bytes / link;
            let tbt = stage_decode * s;
            MappingLatency {
                parallelism,
                ttft_s: ttft,
                tbt_s: tbt,
                // Streams pipeline across stages: one batch completes a
                // token every stage time.
                throughput_tokens_per_s: if stage_decode > 0.0 {
                    workload.batch() as f64 / stage_decode
                } else {
                    0.0
                },
            }
        }
    }
}

/// Full-model latencies of an explicit pipeline schedule, with the fill/
/// drain bubble broken out. Generalises the fixed `stages == devices`,
/// `microbatches == stages` schedule [`mapping_latency`] prices.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineLatency {
    /// Pipeline depth.
    pub stages: u32,
    /// Prefill microbatch count.
    pub microbatches: u32,
    /// Contiguous layer count per stage (remainder in the last stage).
    pub stage_layers: Vec<u32>,
    /// Full-model time-to-first-token, seconds, bubble included.
    pub ttft_s: f64,
    /// Full-model per-token decode latency, seconds (autoregression
    /// serialises the stages).
    pub tbt_s: f64,
    /// Steady-state decode throughput in tokens/s, set by the widest
    /// stage.
    pub throughput_tokens_per_s: f64,
    /// Fraction of prefill pipeline slots idle during fill and drain:
    /// `(S − 1) / (M + S − 1)` for `S` stages and `M` microbatches.
    pub bubble_fraction: f64,
}

/// Price `model` on `system` under an explicit `stages`-deep pipeline
/// schedule with `microbatches` prefill microbatches.
///
/// The schedule model extends [`mapping_latency`]'s pipeline arm:
///
/// * stages hold the contiguous layer blocks of
///   [`pipeline_stage_layers`]; the *widest* stage sets the pipeline
///   clock (an uneven remainder slows every slot, which is exactly the
///   straggler effect the partition helper's remainder policy exposes);
/// * prefill splits the batch into `M` microbatches, so a stage slot
///   costs `widest × layer_prefill / M` plus one boundary transfer, and
///   the schedule occupies `M + S − 1` slots — a fill/drain bubble of
///   `(S − 1)/(M + S − 1)` (the GPipe identity; `M == S` reproduces the
///   `(2S − 1)/S` factor of [`mapping_latency`]);
/// * stage boundaries ship microbatch activations (2-byte operands, as
///   everywhere in the pipeline model) across `S − 1` links;
/// * decode cannot pipeline within one token: TBT walks every layer
///   plus every boundary once, while throughput is set by the widest
///   stage keeping independent streams busy.
///
/// # Errors
///
/// Returns [`AcsError::InvalidConfig`] when `stages` is zero or exceeds
/// the layer count (see [`pipeline_stage_layers`]) or when
/// `microbatches` is zero.
pub fn pipeline_latency(
    system: &SystemConfig,
    params: SimParams,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    stages: u32,
    microbatches: u32,
) -> Result<PipelineLatency, AcsError> {
    if microbatches == 0 {
        return Err(AcsError::invalid_config("microbatches", "must be nonzero"));
    }
    let stage_layers = pipeline_stage_layers(model.num_layers(), stages)?;
    let widest = f64::from(stage_layers.iter().copied().max().unwrap_or(0));
    let layers = f64::from(model.num_layers());
    let m = f64::from(microbatches);
    let s = f64::from(stages);
    let boundaries = f64::from(stages - 1);

    // Per-layer costs on ONE device holding full-width layers, as in the
    // fixed-schedule pipeline arm.
    let single = SystemConfig::single(system.device().clone());
    let sim = Simulator::with_params(single, params);
    let layer_prefill = sim.simulate_layer(model, workload, InferencePhase::Prefill).total_s();
    let layer_decode = sim.simulate_layer(model, workload, workload.decode_phase()).total_s();

    let link = system.device().phy().unidirectional_gb_s() * 1e9;
    let micro_tokens = (workload.batch() * workload.input_len()) as f64 / m;
    let boundary_s = if stages > 1 {
        micro_tokens * model.d_model() as f64 * 2.0 / link
    } else {
        0.0
    };

    // Prefill: M microbatches over S stages occupy M + S − 1 slots of
    // the widest stage's per-microbatch time.
    let slot_s = widest * layer_prefill / m + boundary_s;
    let slots = m + s - 1.0;
    let ttft = slot_s * slots;

    // Decode: one token traverses every layer and every boundary.
    let decode_boundary_s = if stages > 1 {
        workload.batch() as f64 * model.d_model() as f64 * 2.0 / link
    } else {
        0.0
    };
    let tbt = layer_decode * layers + decode_boundary_s * boundaries;
    let stage_decode = layer_decode * widest + decode_boundary_s;
    Ok(PipelineLatency {
        stages,
        microbatches,
        stage_layers,
        ttft_s: ttft,
        tbt_s: tbt,
        throughput_tokens_per_s: if stage_decode > 0.0 {
            workload.batch() as f64 / stage_decode
        } else {
            0.0
        },
        bubble_fraction: (s - 1.0) / slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::DeviceConfig;

    fn quad(device_bw_gb_s: f64) -> SystemConfig {
        let d = DeviceConfig::a100_like()
            .to_builder()
            .device_bandwidth_gb_s(device_bw_gb_s)
            .build()
            .unwrap();
        SystemConfig::quad(d).unwrap()
    }

    fn price(system: &SystemConfig, p: Parallelism) -> MappingLatency {
        mapping_latency(
            system,
            SimParams::calibrated(),
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            p,
        )
    }

    #[test]
    fn tensor_wins_decode_latency_pipeline_matches_throughput() {
        let sys = quad(600.0);
        let tp = price(&sys, Parallelism::Tensor);
        let pp = price(&sys, Parallelism::Pipeline);
        // Autoregression makes PP's per-token latency much worse.
        assert!(pp.tbt_s > 2.0 * tp.tbt_s, "PP {} vs TP {}", pp.tbt_s, tp.tbt_s);
        // But pipelined streams keep throughput in the same league.
        assert!(
            pp.throughput_tokens_per_s > 0.5 * tp.throughput_tokens_per_s,
            "PP {} vs TP {} tok/s",
            pp.throughput_tokens_per_s,
            tp.throughput_tokens_per_s
        );
    }

    #[test]
    fn interconnect_caps_barely_touch_pipeline_parallelism() {
        // Slash device bandwidth 600 → 100 GB/s (far below any rule).
        let fat = price(&quad(600.0), Parallelism::Pipeline);
        let thin = price(&quad(100.0), Parallelism::Pipeline);
        let ttft_hit = thin.ttft_s / fat.ttft_s - 1.0;
        let tbt_hit = thin.tbt_s / fat.tbt_s - 1.0;
        assert!(ttft_hit < 0.10, "PP prefill hit = {ttft_hit:+.3}");
        assert!(tbt_hit < 0.02, "PP decode hit = {tbt_hit:+.3}");
    }

    #[test]
    fn tensor_parallel_matches_simulator_full_model_numbers() {
        let sys = quad(600.0);
        let tp = price(&sys, Parallelism::Tensor);
        let sim = Simulator::new(sys);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        assert!((tp.ttft_s - sim.full_model_ttft_s(&m, &w)).abs() < 1e-9);
        assert!((tp.tbt_s - sim.full_model_tbt_s(&m, &w)).abs() < 1e-9);
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let sys = quad(600.0);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let p = SimParams::calibrated();
        let mut last_ttft = f64::INFINITY;
        let mut last_bubble = 1.0;
        for micro in [1u32, 4, 16, 64] {
            let lat = pipeline_latency(&sys, p, &m, &w, 4, micro).unwrap();
            assert!(lat.ttft_s < last_ttft, "TTFT must drop as microbatches split the fill");
            assert!(lat.bubble_fraction < last_bubble);
            last_ttft = lat.ttft_s;
            last_bubble = lat.bubble_fraction;
        }
        // GPipe identity at M == S: (S−1)/(M+S−1) == (S−1)/(2S−1).
        let lat = pipeline_latency(&sys, p, &m, &w, 4, 4).unwrap();
        assert!((lat.bubble_fraction - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn single_stage_pipeline_has_no_bubble_and_no_boundaries() {
        let sys = quad(600.0);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let lat = pipeline_latency(&sys, SimParams::calibrated(), &m, &w, 1, 8).unwrap();
        assert_eq!(lat.bubble_fraction, 0.0);
        assert_eq!(lat.stage_layers, vec![m.num_layers()]);
        // TBT is exactly the full layer walk: no boundary term.
        let single = SystemConfig::single(sys.device().clone());
        let sim = Simulator::with_params(single, SimParams::calibrated());
        let expect = sim.simulate_layer(&m, &w, w.decode_phase()).total_s()
            * f64::from(m.num_layers());
        assert!((lat.tbt_s - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn uneven_partitions_pay_the_straggler_stage() {
        // 96 layers over 5 stages: [19,19,19,19,20] — the widest stage
        // sets throughput, so 5 uneven stages beat 4 even ones by less
        // than the naive 5/4.
        let sys = quad(600.0);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let p = SimParams::calibrated();
        let even = pipeline_latency(&sys, p, &m, &w, 4, 4).unwrap();
        let uneven = pipeline_latency(&sys, p, &m, &w, 5, 5).unwrap();
        assert_eq!(uneven.stage_layers.iter().max(), Some(&20));
        let gain = uneven.throughput_tokens_per_s / even.throughput_tokens_per_s;
        assert!(gain > 1.0, "five stages must still beat four");
        assert!(gain < 1.25, "straggler stage caps the gain, got {gain}");
    }

    #[test]
    fn degenerate_pipeline_schedules_are_typed_errors() {
        let sys = quad(600.0);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let p = SimParams::calibrated();
        assert_eq!(pipeline_latency(&sys, p, &m, &w, 0, 4).unwrap_err().kind(), "invalid_config");
        assert_eq!(pipeline_latency(&sys, p, &m, &w, 4, 0).unwrap_err().kind(), "invalid_config");
        assert_eq!(
            pipeline_latency(&sys, p, &m, &w, m.num_layers() + 1, 4).unwrap_err().kind(),
            "invalid_config"
        );
    }

    #[test]
    fn pipeline_prefill_beats_single_device() {
        // Even with the bubble, S stages split the prefill work.
        let sys = quad(600.0);
        let pp = price(&sys, Parallelism::Pipeline);
        let single = SystemConfig::new(DeviceConfig::a100_like(), 1).unwrap();
        let sim = Simulator::new(single);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let solo = sim.full_model_ttft_s(&m, &w);
        assert!(pp.ttft_s < solo, "PP {} vs solo {}", pp.ttft_s, solo);
    }
}
