//! Tensor vs pipeline parallelism.
//!
//! The October 2022 rule throttled the device-to-device interconnect
//! (600 GB/s) on the theory that multi-device AI needs fat links. That is
//! true of *tensor* parallelism (two all-reduces per layer); *pipeline*
//! parallelism ships only a microbatch of activations across each stage
//! boundary and runs happily over thin links — at the price of decode
//! latency, since an autoregressive token must traverse every stage in
//! sequence. This module prices both mappings on the same node so the
//! policy question ("does capping the interconnect throttle the
//! workload?") can be answered quantitatively.

use crate::latency::Simulator;
use crate::params::SimParams;
use acs_hw::SystemConfig;
use acs_llm::{InferencePhase, ModelConfig, WorkloadConfig};

/// How a model is split across the node's devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Megatron-style: every layer split across all devices,
    /// all-reduces on the critical path.
    Tensor,
    /// Layer pipelining: contiguous layer blocks per device, activations
    /// handed across stage boundaries.
    Pipeline,
}

/// Full-model latencies under one mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingLatency {
    /// Mapping priced.
    pub parallelism: Parallelism,
    /// Full-model time-to-first-token, seconds.
    pub ttft_s: f64,
    /// Full-model per-token decode latency, seconds.
    pub tbt_s: f64,
    /// Steady-state decode throughput in tokens/s (pipeline parallelism
    /// overlaps independent request streams across stages).
    pub throughput_tokens_per_s: f64,
}

/// Price `model` on `system` under `parallelism`.
///
/// Pipeline mapping assumptions (documented, deliberately simple):
/// * stages hold `layers / devices` contiguous layers (layers assumed
///   divisible; remainders are absorbed into the last stage's count);
/// * prefill uses `devices` microbatches, so the pipeline bubble adds a
///   factor `(2·S − 1)/S` over perfectly overlapped stages;
/// * each stage boundary ships the microbatch activations
///   (`tokens × d_model × 2` bytes) over the per-direction link;
/// * decode cannot pipeline within one token (autoregression), so TBT is
///   the *sum* of stage times — but independent tokens of the batch keep
///   all stages busy, so throughput is set by one stage, not the sum.
#[must_use]
pub fn mapping_latency(
    system: &SystemConfig,
    params: SimParams,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    parallelism: Parallelism,
) -> MappingLatency {
    let devices = system.device_count();
    let layers = f64::from(model.num_layers());
    match parallelism {
        Parallelism::Tensor => {
            let sim = Simulator::with_params(system.clone(), params);
            let tbt = sim.tbt_s(model, workload) * layers;
            MappingLatency {
                parallelism,
                ttft_s: sim.ttft_s(model, workload) * layers,
                tbt_s: tbt,
                throughput_tokens_per_s: if tbt > 0.0 {
                    workload.batch() as f64 / tbt
                } else {
                    0.0
                },
            }
        }
        Parallelism::Pipeline => {
            // Per-layer costs on ONE device holding full-width layers.
            let single = SystemConfig::single(system.device().clone());
            let sim = Simulator::with_params(single, params);
            let s = f64::from(devices);
            let layer_prefill =
                sim.simulate_layer(model, workload, InferencePhase::Prefill).total_s();
            let layer_decode =
                sim.simulate_layer(model, workload, workload.decode_phase()).total_s();

            // Stage boundary transfer per microbatch: activations only.
            let micro_tokens =
                (workload.batch() * workload.input_len()) as f64 / s;
            let boundary_bytes = micro_tokens * model.d_model() as f64 * 2.0;
            let link = system.device().phy().unidirectional_gb_s() * 1e9;
            let boundary_s = boundary_bytes / link;

            // Prefill: S microbatches over S stages → bubble (2S−1)/S.
            let stage_prefill = layer_prefill * layers / s + boundary_s;
            let ttft = stage_prefill * (2.0 * s - 1.0) / s;

            // Decode: one token crosses every stage in sequence.
            let decode_boundary_bytes = workload.batch() as f64 * model.d_model() as f64 * 2.0;
            let stage_decode =
                layer_decode * layers / s + decode_boundary_bytes / link;
            let tbt = stage_decode * s;
            MappingLatency {
                parallelism,
                ttft_s: ttft,
                tbt_s: tbt,
                // Streams pipeline across stages: one batch completes a
                // token every stage time.
                throughput_tokens_per_s: if stage_decode > 0.0 {
                    workload.batch() as f64 / stage_decode
                } else {
                    0.0
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::DeviceConfig;

    fn quad(device_bw_gb_s: f64) -> SystemConfig {
        let d = DeviceConfig::a100_like()
            .to_builder()
            .device_bandwidth_gb_s(device_bw_gb_s)
            .build()
            .unwrap();
        SystemConfig::quad(d).unwrap()
    }

    fn price(system: &SystemConfig, p: Parallelism) -> MappingLatency {
        mapping_latency(
            system,
            SimParams::calibrated(),
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            p,
        )
    }

    #[test]
    fn tensor_wins_decode_latency_pipeline_matches_throughput() {
        let sys = quad(600.0);
        let tp = price(&sys, Parallelism::Tensor);
        let pp = price(&sys, Parallelism::Pipeline);
        // Autoregression makes PP's per-token latency much worse.
        assert!(pp.tbt_s > 2.0 * tp.tbt_s, "PP {} vs TP {}", pp.tbt_s, tp.tbt_s);
        // But pipelined streams keep throughput in the same league.
        assert!(
            pp.throughput_tokens_per_s > 0.5 * tp.throughput_tokens_per_s,
            "PP {} vs TP {} tok/s",
            pp.throughput_tokens_per_s,
            tp.throughput_tokens_per_s
        );
    }

    #[test]
    fn interconnect_caps_barely_touch_pipeline_parallelism() {
        // Slash device bandwidth 600 → 100 GB/s (far below any rule).
        let fat = price(&quad(600.0), Parallelism::Pipeline);
        let thin = price(&quad(100.0), Parallelism::Pipeline);
        let ttft_hit = thin.ttft_s / fat.ttft_s - 1.0;
        let tbt_hit = thin.tbt_s / fat.tbt_s - 1.0;
        assert!(ttft_hit < 0.10, "PP prefill hit = {ttft_hit:+.3}");
        assert!(tbt_hit < 0.02, "PP decode hit = {tbt_hit:+.3}");
    }

    #[test]
    fn tensor_parallel_matches_simulator_full_model_numbers() {
        let sys = quad(600.0);
        let tp = price(&sys, Parallelism::Tensor);
        let sim = Simulator::new(sys);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        assert!((tp.ttft_s - sim.full_model_ttft_s(&m, &w)).abs() < 1e-9);
        assert!((tp.tbt_s - sim.full_model_tbt_s(&m, &w)).abs() < 1e-9);
    }

    #[test]
    fn pipeline_prefill_beats_single_device() {
        // Even with the bubble, S stages split the prefill work.
        let sys = quad(600.0);
        let pp = price(&sys, Parallelism::Pipeline);
        let single = SystemConfig::new(DeviceConfig::a100_like(), 1).unwrap();
        let sim = Simulator::new(single);
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let solo = sim.full_model_ttft_s(&m, &w);
        assert!(pp.ttft_s < solo, "PP {} vs solo {}", pp.ttft_s, solo);
    }
}
