//! Hierarchical timed spans with thread-safe nesting.
//!
//! A [`Span`] is a scoped guard: creating one pushes it onto a thread-local
//! stack (so spans opened later on the same thread become its children) and
//! dropping it records a [`SpanEvent`] into the owning registry's trace
//! buffer. Span IDs are assigned sequentially at creation, so any code path
//! that opens spans in a deterministic order yields an identical trace
//! structure on every run — only the timing fields vary.

use crate::Registry;
use std::cell::RefCell;
use std::time::Instant;

/// One completed span, as recorded in the trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Sequential ID, starting at 1 per registry.
    pub id: u64,
    /// ID of the enclosing span on the same thread, or 0 at the root.
    pub parent: u64,
    /// Nesting depth at creation (root spans have depth 0).
    pub depth: u32,
    /// Span name.
    pub name: String,
    /// Start offset from the registry epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
}

thread_local! {
    /// Stack of `(registry id, span id)` for the spans currently open on
    /// this thread. Keyed by registry so two registries interleaved on one
    /// thread do not adopt each other's spans as parents.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A scoped span guard. Obtained from [`Registry::span`] or
/// [`crate::span`]; records its event when dropped. Disabled registries
/// hand out inert guards whose creation and drop cost one atomic load.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct Span<'r> {
    inner: Option<SpanInner<'r>>,
}

#[derive(Debug)]
struct SpanInner<'r> {
    registry: &'r Registry,
    id: u64,
    parent: u64,
    depth: u32,
    name: String,
    start: Instant,
    start_ns: u64,
}

impl<'r> Span<'r> {
    /// An inert span (what disabled registries return).
    pub(crate) fn disabled() -> Span<'static> {
        Span { inner: None }
    }

    pub(crate) fn start(registry: &'r Registry, name: &str) -> Span<'r> {
        let id = registry.next_span_id();
        let rid = registry.registry_id();
        let (parent, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(r, _)| *r == rid)
                .map_or(0, |&(_, sid)| sid);
            let depth = stack.iter().filter(|(r, _)| *r == rid).count() as u32;
            stack.push((rid, id));
            (parent, depth)
        });
        Span {
            inner: Some(SpanInner {
                registry,
                id,
                parent,
                depth,
                name: name.to_owned(),
                start: Instant::now(),
                start_ns: registry.elapsed_ns(),
            }),
        }
    }

    /// The span's ID, or 0 for an inert span.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }

    /// Whether this span is live (owned by an enabled registry).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let rid = inner.registry.registry_id();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally our entry is on top (guards drop in reverse creation
            // order); tolerate out-of-order drops by removing wherever it is.
            if let Some(pos) = stack.iter().rposition(|&e| e == (rid, inner.id)) {
                stack.remove(pos);
            }
        });
        let dur_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.registry.push_span_event(SpanEvent {
            id: inner.id,
            parent: inner.parent,
            depth: inner.depth,
            name: inner.name,
            start_ns: inner.start_ns,
            dur_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn nesting_assigns_parents_and_depths() {
        let reg = Registry::new_enabled();
        {
            let outer = reg.span("outer");
            assert_eq!(outer.id(), 1);
            {
                let inner = reg.span("inner");
                assert_eq!(inner.id(), 2);
                let _leaf = reg.span("leaf");
            }
            let sibling = reg.span("sibling");
            assert!(sibling.is_recording());
        }
        let events = reg.span_events();
        // Completion order: leaf, inner, sibling, outer.
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["leaf", "inner", "sibling", "outer"]);
        let by_name = |n: &str| events.iter().find(|e| e.name == n).expect("span recorded");
        assert_eq!(by_name("outer").parent, 0);
        assert_eq!(by_name("outer").depth, 0);
        assert_eq!(by_name("inner").parent, by_name("outer").id);
        assert_eq!(by_name("inner").depth, 1);
        assert_eq!(by_name("leaf").parent, by_name("inner").id);
        assert_eq!(by_name("leaf").depth, 2);
        assert_eq!(by_name("sibling").parent, by_name("outer").id);
        assert_eq!(by_name("sibling").depth, 1);
    }

    #[test]
    fn spans_do_not_leak_parents_across_threads() {
        let reg = Registry::new_enabled();
        let _root = reg.span("root");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let worker = reg.span("worker");
                // A fresh thread has an empty span stack: no parent, even
                // though `root` is open on the spawning thread.
                drop(worker);
            });
        });
        let events = reg.span_events();
        let worker = events.iter().find(|e| e.name == "worker").expect("worker span");
        assert_eq!(worker.parent, 0);
        assert_eq!(worker.depth, 0);
    }

    #[test]
    fn two_registries_on_one_thread_do_not_adopt_each_other() {
        let a = Registry::new_enabled();
        let b = Registry::new_enabled();
        let _outer_a = a.span("a.outer");
        let inner_b = b.span("b.inner");
        assert_eq!(inner_b.id(), 1, "each registry numbers its own spans");
        drop(inner_b);
        let events = b.span_events();
        assert_eq!(events[0].parent, 0, "b's span must not parent onto a's");
    }

    #[test]
    fn disabled_registry_hands_out_inert_spans() {
        let reg = Registry::new();
        let span = reg.span("ignored");
        assert!(!span.is_recording());
        assert_eq!(span.id(), 0);
        drop(span);
        assert!(reg.span_events().is_empty());
    }
}
