//! `acs-telemetry`: zero-dependency tracing, metrics, and profiling.
//!
//! The subsystem has three layers (DESIGN.md §11):
//!
//! 1. **Spans** ([`Span`]) — scoped guards with monotonic timing and
//!    thread-safe nesting via a thread-local parent stack.
//! 2. **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — named
//!    instruments interned in a [`Registry`]; histograms use power-of-two
//!    buckets and merge across threads.
//! 3. **Export** ([`export`]) — a deterministic JSONL trace (canonical-JSON
//!    codec from `acs-errors`) and a compact text summary table.
//!
//! Instrumented code paths call the free functions ([`span`], [`count`],
//! [`observe`], [`set_gauge`]) against the process-global registry, which
//! starts *disabled*: until [`global`]`().enable()` runs (e.g. via a
//! `--profile` flag), every call reduces to an atomic load and a branch.
//! Subsystems that always need live metrics (the serve crate) own their own
//! always-enabled `Registry` instead of using the global one.

mod export;
mod metrics;
mod span;

pub use export::{summary_table, trace_jsonl, write_trace};
pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot,
    BUCKETS, OFFSET,
};
pub use span::{Span, SpanEvent};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Distinguishes registries on the thread-local span stack.
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

/// A registry of named instruments plus a span trace buffer.
///
/// Instruments are interned on first use and live for the registry's
/// lifetime; handles ([`Arc<Counter>`] etc.) can be cached by hot code to
/// skip the name lookup. The registry starts disabled unless constructed
/// with [`Registry::new_enabled`].
#[derive(Debug)]
pub struct Registry {
    id: u64,
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    next_span_id: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanEvent>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A new, disabled registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            enabled: Arc::new(AtomicBool::new(false)),
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(1),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// A new registry that is recording from the start.
    #[must_use]
    pub fn new_enabled() -> Self {
        let reg = Registry::new();
        reg.enable();
        reg
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (already-interned handles go quiet too: they share
    /// this flag).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the registry is currently recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Intern (or fetch) the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new(Arc::clone(&self.enabled)));
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Intern (or fetch) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new(Arc::clone(&self.enabled)));
        map.insert(name.to_owned(), Arc::clone(&g));
        g
    }

    /// Intern (or fetch) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(Arc::clone(&self.enabled)));
        map.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Add `n` to the counter called `name` (no-op when disabled, before
    /// any name lookup).
    pub fn add(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.counter(name).add(n);
        }
    }

    /// Record `v` into the histogram called `name` (no-op when disabled).
    pub fn observe(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Set the gauge called `name` (no-op when disabled).
    pub fn set_gauge(&self, name: &str, v: u64) {
        if self.is_enabled() {
            self.gauge(name).set(v);
        }
    }

    /// Open a span called `name`. Returns an inert guard when disabled.
    pub fn span(&self, name: &str) -> Span<'_> {
        if self.is_enabled() {
            Span::start(self, name)
        } else {
            Span::disabled()
        }
    }

    /// Completed spans, in completion order.
    #[must_use]
    pub fn span_events(&self) -> Vec<SpanEvent> {
        self.spans.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Sorted `(name, value)` pairs for all interned counters.
    #[must_use]
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sorted `(name, value)` pairs for all interned gauges.
    #[must_use]
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sorted `(name, snapshot)` pairs for all interned histograms.
    #[must_use]
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Zero every instrument, clear the trace buffer, and restart span IDs
    /// from 1. Interned handles stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap_or_else(PoisonError::into_inner).values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap_or_else(PoisonError::into_inner).values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap_or_else(PoisonError::into_inner).values() {
            h.reset();
        }
        self.spans.lock().unwrap_or_else(PoisonError::into_inner).clear();
        self.next_span_id.store(1, Ordering::Relaxed);
    }

    pub(crate) fn registry_id(&self) -> u64 {
        self.id
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn push_span_event(&self, event: SpanEvent) {
        self.spans.lock().unwrap_or_else(PoisonError::into_inner).push(event);
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry (created disabled on first access).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether the global registry exists *and* is recording. This is the
/// fast-path check instrumented code uses before doing any work; when
/// profiling was never requested it is one `OnceLock` load and a branch.
#[must_use]
pub fn enabled() -> bool {
    GLOBAL.get().is_some_and(Registry::is_enabled)
}

/// Add `n` to the global counter called `name` (no-op unless profiling).
pub fn count(name: &str, n: u64) {
    if let Some(reg) = GLOBAL.get() {
        reg.add(name, n);
    }
}

/// Record `v` into the global histogram called `name` (no-op unless
/// profiling).
pub fn observe(name: &str, v: f64) {
    if let Some(reg) = GLOBAL.get() {
        reg.observe(name, v);
    }
}

/// Set the global gauge called `name` (no-op unless profiling).
pub fn set_gauge(name: &str, v: u64) {
    if let Some(reg) = GLOBAL.get() {
        reg.set_gauge(name, v);
    }
}

/// Open a span on the global registry (inert unless profiling).
pub fn span(name: &str) -> Span<'static> {
    match GLOBAL.get() {
        Some(reg) => reg.span(name),
        None => Span::disabled(),
    }
}

/// A named counter on the global registry with a cached handle.
///
/// [`count`] pays a mutex-guarded name lookup per call, which is fine for
/// per-run events but too slow for per-point or per-layer hot paths. This
/// type is `const`-constructible, so a call site can hold one in a
/// `static` and intern exactly once (on its first enabled call); every
/// call after that is an atomic load, a branch, and an atomic add.
/// [`Registry::reset`] zeroes instruments in place, so the cached handle
/// stays valid across resets.
#[derive(Debug)]
pub struct GlobalCounter {
    name: &'static str,
    handle: OnceLock<Arc<Counter>>,
}

impl GlobalCounter {
    /// A handle for the global counter called `name` (not yet interned).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        GlobalCounter { name, handle: OnceLock::new() }
    }

    /// Add `n` (no-op unless profiling).
    pub fn add(&self, n: u64) {
        // Fast path once interned: the counter's own enabled flag (shared
        // with the registry) makes it a no-op when profiling is off.
        if let Some(counter) = self.handle.get() {
            counter.add(n);
        } else if enabled() {
            self.handle.get_or_init(|| global().counter(self.name)).add(n);
        }
    }
}

/// A named histogram on the global registry with a cached handle; the
/// histogram counterpart of [`GlobalCounter`].
#[derive(Debug)]
pub struct GlobalHistogram {
    name: &'static str,
    handle: OnceLock<Arc<Histogram>>,
}

impl GlobalHistogram {
    /// A handle for the global histogram called `name` (not yet interned).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        GlobalHistogram { name, handle: OnceLock::new() }
    }

    /// Record `v` (no-op unless profiling).
    pub fn record(&self, v: f64) {
        if let Some(histogram) = self.handle.get() {
            histogram.record(v);
        } else if enabled() {
            self.handle.get_or_init(|| global().histogram(self.name)).record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing_and_interns_nothing_via_add() {
        let reg = Registry::new();
        reg.add("c", 3);
        reg.observe("h", 1.0);
        reg.set_gauge("g", 2);
        assert!(reg.counter_values().is_empty());
        assert!(reg.gauge_values().is_empty());
        assert!(reg.histogram_snapshots().is_empty());
    }

    #[test]
    fn instruments_are_interned_once_and_shared() {
        let reg = Registry::new_enabled();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(reg.counter_values(), vec![("x".to_owned(), 5)]);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_valid() {
        let reg = Registry::new_enabled();
        let c = reg.counter("n");
        c.add(7);
        drop(reg.span("s"));
        reg.reset();
        assert_eq!(c.get(), 0);
        assert!(reg.span_events().is_empty());
        c.add(1);
        assert_eq!(reg.counter_values(), vec![("n".to_owned(), 1)]);
        drop(reg.span("t"));
        assert_eq!(reg.span_events()[0].id, 1, "span ids restart after reset");
    }

    #[test]
    fn names_come_back_sorted() {
        let reg = Registry::new_enabled();
        reg.add("zeta", 1);
        reg.add("alpha", 1);
        reg.add("mid", 1);
        let names: Vec<String> = reg.counter_values().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn cached_global_handles_are_quiet_until_profiling_and_survive_reset() {
        // The only test in this binary touching the global registry, so no
        // cross-test interference despite cargo's concurrent test threads.
        static HITS: GlobalCounter = GlobalCounter::new("test.cached.hits");
        static LAT: GlobalHistogram = GlobalHistogram::new("test.cached.lat");
        HITS.add(5);
        LAT.record(1.0);
        assert!(
            !global().counter_values().iter().any(|(n, _)| n == "test.cached.hits"),
            "disabled global must not intern through a cached handle"
        );
        global().enable();
        HITS.add(2);
        LAT.record(2.0);
        global().reset();
        HITS.add(3);
        let hits = global()
            .counter_values()
            .into_iter()
            .find(|(n, _)| n == "test.cached.hits")
            .map(|(_, v)| v);
        assert_eq!(hits, Some(3), "handle stays valid across reset");
        global().disable();
    }

    #[test]
    fn counters_tolerate_concurrent_adds() {
        let reg = Registry::new_enabled();
        let c = reg.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
