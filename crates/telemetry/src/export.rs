//! Trace export: a deterministic JSONL dump of a registry plus a compact
//! text summary table.
//!
//! The JSONL form uses the canonical-JSON codec from `acs-errors`, so a
//! given registry state always serialises to identical bytes. Structure is
//! deterministic across runs of a deterministic program: span IDs are
//! sequential in creation order, events appear in completion order, and
//! instruments are emitted sorted by name with fixed-width bucket arrays —
//! only timing-derived *values* (durations, wall-time histogram contents)
//! vary between runs.

use crate::{HistogramSnapshot, Registry, SpanEvent, BUCKETS};
use acs_errors::json::{object, Value};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

fn num(v: f64) -> Value {
    if v.is_finite() {
        Value::Number(v)
    } else {
        Value::Null
    }
}

fn unum(v: u64) -> Value {
    Value::Number(v as f64)
}

fn span_line(e: &SpanEvent) -> Value {
    object(vec![
        ("type", Value::String("span".to_owned())),
        ("id", unum(e.id)),
        ("parent", unum(e.parent)),
        ("depth", unum(u64::from(e.depth))),
        ("name", Value::String(e.name.clone())),
        ("start_ns", unum(e.start_ns)),
        ("dur_ns", unum(e.dur_ns)),
    ])
}

fn histogram_line(name: &str, s: &HistogramSnapshot) -> Value {
    let buckets: Vec<Value> = (0..BUCKETS)
        .map(|i| unum(s.buckets.get(i).copied().unwrap_or(0)))
        .collect();
    object(vec![
        ("type", Value::String("histogram".to_owned())),
        ("name", Value::String(name.to_owned())),
        ("count", unum(s.count)),
        ("rejected", unum(s.rejected)),
        ("sum", num(s.sum)),
        ("min", if s.count == 0 { Value::Null } else { num(s.min) }),
        ("max", if s.count == 0 { Value::Null } else { num(s.max) }),
        ("p50", num(s.p50())),
        ("p90", num(s.p90())),
        ("p99", num(s.p99())),
        ("buckets", Value::Array(buckets)),
    ])
}

/// Serialise the registry as JSONL: one header line, then spans in
/// completion order, then counters, gauges, and histograms sorted by name.
#[must_use]
pub fn trace_jsonl(reg: &Registry) -> String {
    let spans = reg.span_events();
    let counters = reg.counter_values();
    let gauges = reg.gauge_values();
    let histograms = reg.histogram_snapshots();
    let mut out = String::new();
    let header = object(vec![
        ("type", Value::String("trace_header".to_owned())),
        ("version", unum(1)),
        ("spans", unum(spans.len() as u64)),
        ("counters", unum(counters.len() as u64)),
        ("gauges", unum(gauges.len() as u64)),
        ("histograms", unum(histograms.len() as u64)),
    ]);
    out.push_str(&header.to_json());
    out.push('\n');
    for e in &spans {
        out.push_str(&span_line(e).to_json());
        out.push('\n');
    }
    for (name, value) in &counters {
        let line = object(vec![
            ("type", Value::String("counter".to_owned())),
            ("name", Value::String(name.clone())),
            ("value", unum(*value)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for (name, value) in &gauges {
        let line = object(vec![
            ("type", Value::String("gauge".to_owned())),
            ("name", Value::String(name.clone())),
            ("value", unum(*value)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for (name, snap) in &histograms {
        out.push_str(&histogram_line(name, snap).to_json());
        out.push('\n');
    }
    out
}

/// Write [`trace_jsonl`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_trace(reg: &Registry, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(trace_jsonl(reg).as_bytes())?;
    file.flush()
}

/// Render a compact, fixed-width summary: per-stage wall time (spans
/// aggregated by name), counters, histogram quantiles, gauges, and derived
/// cache hit rates (from `<base>.hits` / `<base>.misses` counter pairs).
#[must_use]
pub fn summary_table(reg: &Registry) -> String {
    let spans = reg.span_events();
    let counters = reg.counter_values();
    let gauges = reg.gauge_values();
    let histograms = reg.histogram_snapshots();
    let mut out = String::new();
    let _ = writeln!(out, "telemetry summary");
    let _ = writeln!(out, "=================");

    if !spans.is_empty() {
        // Aggregate by name, preserving first-seen order of completion so
        // the table reads in roughly pipeline order.
        let mut order: Vec<String> = Vec::new();
        let mut agg: std::collections::BTreeMap<String, (u64, u64)> = std::collections::BTreeMap::new();
        for e in &spans {
            let entry = agg.entry(e.name.clone()).or_insert_with(|| {
                order.push(e.name.clone());
                (0, 0)
            });
            entry.0 += 1;
            entry.1 += e.dur_ns;
        }
        let _ = writeln!(out, "{:<40} {:>8} {:>12} {:>12}", "span", "calls", "total_ms", "mean_ms");
        for name in &order {
            let (calls, total_ns) = agg[name];
            let total_ms = total_ns as f64 / 1e6;
            let _ = writeln!(
                out,
                "  {:<38} {:>8} {:>12.3} {:>12.3}",
                name,
                calls,
                total_ms,
                total_ms / calls as f64,
            );
        }
    }

    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p90", "p99"
        );
        for (name, s) in &histograms {
            let _ = writeln!(
                out,
                "  {:<38} {:>8} {:>10.3} {:>10.3} {:>10.3}",
                name,
                s.count,
                s.p50(),
                s.p90(),
                s.p99(),
            );
        }
    }

    if !counters.is_empty() {
        let _ = writeln!(out, "{:<40} {:>8}", "counter", "value");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {:<38} {:>8}", name, value);
        }
    }

    if !gauges.is_empty() {
        let _ = writeln!(out, "{:<40} {:>8}", "gauge", "value");
        for (name, value) in &gauges {
            let _ = writeln!(out, "  {:<38} {:>8}", name, value);
        }
    }

    let mut rate_rows = Vec::new();
    for (name, hits) in &counters {
        if let Some(base) = name.strip_suffix(".hits") {
            let miss_key = format!("{base}.misses");
            if let Some((_, misses)) = counters.iter().find(|(n, _)| *n == miss_key) {
                let total = hits + misses;
                if total > 0 {
                    rate_rows.push((base.to_owned(), *hits, *misses, *hits as f64 / total as f64));
                }
            }
        }
    }
    if !rate_rows.is_empty() {
        let _ = writeln!(out, "{:<40} {:>8}", "cache", "hit_rate");
        for (base, hits, misses, rate) in &rate_rows {
            let _ = writeln!(
                out,
                "  {:<38} {:>7.1}%  ({hits} hits / {misses} misses)",
                base,
                rate * 100.0,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_errors::json::parse;

    fn sample_registry() -> Registry {
        let reg = Registry::new_enabled();
        {
            let _outer = reg.span("stage.outer");
            let _inner = reg.span("stage.inner");
        }
        reg.add("demo.cache.hits", 3);
        reg.add("demo.cache.misses", 1);
        reg.set_gauge("demo.depth", 4);
        reg.observe("demo.latency_us", 12.5);
        reg.observe("demo.latency_us", 80.0);
        reg
    }

    #[test]
    fn every_jsonl_line_parses_and_header_counts_match() {
        let reg = sample_registry();
        let text = trace_jsonl(&reg);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 6);
        let header = parse(lines[0]).expect("header parses");
        assert_eq!(header.require_str("type").unwrap(), "trace_header");
        assert_eq!(header.require_u64("spans").unwrap(), 2);
        assert_eq!(header.require_u64("counters").unwrap(), 2);
        assert_eq!(header.require_u64("gauges").unwrap(), 1);
        assert_eq!(header.require_u64("histograms").unwrap(), 1);
        for line in &lines[1..] {
            let v = parse(line).expect("line parses");
            assert!(v.get("type").is_some());
        }
    }

    #[test]
    fn histogram_lines_have_fixed_width_bucket_arrays() {
        let reg = sample_registry();
        let text = trace_jsonl(&reg);
        let hist = text
            .lines()
            .find(|l| l.contains("\"histogram\""))
            .expect("histogram line");
        let v = parse(hist).unwrap();
        assert_eq!(v.require("buckets").unwrap().as_array().unwrap().len(), BUCKETS);
        assert_eq!(v.require_u64("count").unwrap(), 2);
        assert_eq!(crate::bucket_upper(32), 1.0);
    }

    #[test]
    fn serialisation_is_deterministic_for_a_fixed_registry() {
        let reg = sample_registry();
        assert_eq!(trace_jsonl(&reg), trace_jsonl(&reg));
    }

    #[test]
    fn empty_histogram_serialises_null_min_max() {
        let reg = Registry::new_enabled();
        let _ = reg.histogram("empty");
        let text = trace_jsonl(&reg);
        let line = text.lines().find(|l| l.contains("\"empty\"")).unwrap();
        let v = parse(line).unwrap();
        assert_eq!(v.require("min").unwrap(), &acs_errors::json::Value::Null);
        assert_eq!(v.require("max").unwrap(), &acs_errors::json::Value::Null);
    }

    #[test]
    fn summary_table_reports_stages_counters_and_hit_rates() {
        let reg = sample_registry();
        let table = summary_table(&reg);
        assert!(table.contains("stage.outer"));
        assert!(table.contains("stage.inner"));
        assert!(table.contains("demo.cache.hits"));
        assert!(table.contains("demo.latency_us"));
        assert!(table.contains("demo.depth"));
        assert!(table.contains("75.0%"), "hit rate row missing:\n{table}");
    }

    #[test]
    fn write_trace_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!("acs-telemetry-test-{}", std::process::id()));
        let path = dir.join("nested").join("trace.jsonl");
        let reg = sample_registry();
        write_trace(&reg, &path).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, trace_jsonl(&reg));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
