//! Named metric instruments: counters, gauges, and log-bucketed histograms.
//!
//! All instruments are lock-free on the hot path (plain atomics) and carry a
//! shared `enabled` flag cloned from their owning [`crate::Registry`], so a
//! disabled registry reduces every update to one atomic load and a branch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets. Bucket `i` covers `(2^(i-OFFSET-1), 2^(i-OFFSET)]`;
/// bucket 0 additionally absorbs zero, and the top bucket absorbs overflow.
pub const BUCKETS: usize = 64;

/// Exponent offset: bucket 0's upper bound is `2^-OFFSET`, the top bucket's
/// upper bound is `2^(BUCKETS-1-OFFSET)`. With 64 buckets and offset 32 the
/// histogram spans `2^-32 ..= 2^31`, which covers sub-nanosecond model costs
/// up to half-hour wall times when values are recorded in microseconds.
pub const OFFSET: i32 = 32;

fn pow2(e: i32) -> f64 {
    f64::powi(2.0, e)
}

/// Inclusive upper bound of bucket `i`.
#[must_use]
pub fn bucket_upper(i: usize) -> f64 {
    pow2(i as i32 - OFFSET)
}

/// Exclusive lower bound of bucket `i` (zero for bucket 0, which is closed).
#[must_use]
pub fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        pow2(i as i32 - OFFSET - 1)
    }
}

/// Bucket index for `v`, or `None` when `v` is not recordable (negative,
/// NaN, or infinite). Exact powers of two land in the bucket whose upper
/// bound they equal: `bucket_index(2^k) == k + OFFSET`.
#[must_use]
pub fn bucket_index(v: f64) -> Option<usize> {
    if !v.is_finite() || v < 0.0 {
        return None;
    }
    if v <= bucket_upper(0) {
        return Some(0);
    }
    // `ceil(log2(v))` read straight off the IEEE-754 representation: for a
    // normal `v = 1.m × 2^e` it is `e` when the mantissa is zero (an exact
    // power of two, which belongs to the bucket whose upper bound it
    // equals) and `e + 1` otherwise. Exact, branch-cheap, and free of the
    // float `log2` library call — this runs once per recorded sample on
    // profiled hot paths. Subnormals (< 2^-1022) were already absorbed by
    // the bucket-0 early return above.
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let mantissa = bits & ((1u64 << 52) - 1);
    let e = if mantissa == 0 { exp } else { exp + 1 };
    let hi = BUCKETS as i32 - 1 - OFFSET;
    Some((e.clamp(1 - OFFSET, hi) + OFFSET) as usize)
}

/// A monotonically increasing `u64` counter.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter { enabled, value: AtomicU64::new(0) }
    }

    /// Add `n`; a no-op while the owning registry is disabled.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `u64` gauge (e.g. current queue depth).
#[derive(Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Gauge {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Gauge { enabled, value: AtomicU64::new(0) }
    }

    /// Set the gauge; a no-op while the owning registry is disabled.
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Record `v` if it exceeds the current value (high-water mark).
    pub fn set_max(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Shards per histogram. Recording threads are pinned round-robin to a
/// shard, so up to this many concurrent writers touch disjoint memory.
const SHARDS: usize = 8;

/// One shard of a histogram's state, alignment-padded so two shards never
/// share a cache line. Without sharding, a profiled parallel sweep has
/// every worker thread ping-ponging one set of shared atomics
/// (bucket/count/sum lines bounce between cores on each record), which
/// alone blew the <5% profiling-overhead budget enforced by
/// `scripts/bench-smoke.sh`.
#[repr(align(64))]
#[derive(Debug)]
struct Shard {
    // The total sample count is not maintained per record — it is the sum
    // of the buckets, computed at snapshot time — so a record is two RMW
    // atomics (bucket increment + sum accumulate) on the common path.
    buckets: [AtomicU64; BUCKETS],
    rejected: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            rejected: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.rejected.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// The shard this thread records into: assigned once per thread,
/// round-robin, so a steady worker pool spreads evenly across shards.
/// Const-initialised TLS (no lazy-init flag on the access path) with a
/// sentinel for "not yet assigned".
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            i = (NEXT_SHARD.fetch_add(1, Ordering::Relaxed) as usize) % SHARDS;
            s.set(i);
        }
        i
    })
}

/// A log-bucketed histogram over non-negative finite `f64` samples, with
/// power-of-two bucket boundaries. Recording is lock-free and sharded per
/// recording thread; concurrent snapshots merge the shards and are merely
/// approximate (they may straddle an in-flight record), which is fine for
/// monitoring and exact once writers have quiesced.
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    shards: [Shard; SHARDS],
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Histogram { enabled, shards: std::array::from_fn(|_| Shard::new()) }
    }

    /// A free-standing, always-enabled histogram not owned by any registry
    /// (e.g. for a short-lived measurement shared across worker threads).
    #[must_use]
    pub fn standalone() -> Self {
        Histogram::new(Arc::new(AtomicBool::new(true)))
    }

    /// Record one sample. Returns `false` (and counts the rejection) for
    /// negative, NaN, or infinite values; a no-op returning `true` while
    /// the owning registry is disabled.
    pub fn record(&self, v: f64) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return true;
        }
        let shard = &self.shards[shard_index()];
        let Some(i) = bucket_index(v) else {
            shard.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        shard.buckets[i].fetch_add(1, Ordering::Relaxed);
        // The CAS loops below effectively never retry: a shard has one
        // steady writer unless more than SHARDS threads record at once.
        let mut cur = shard.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match shard.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = shard.min_bits.load(Ordering::Relaxed);
        while v < f64::from_bits(cur) {
            match shard.min_bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = shard.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match shard.max_bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        true
    }

    /// Point-in-time copy of the histogram state, merged across shards.
    /// Bucket counts, totals, and min/max merge exactly; `sum` is a float
    /// accumulation whose grouping depends on which threads recorded
    /// where, so its last bits may differ between reruns (quantiles,
    /// which come from buckets and min/max, do not).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let mut rejected = 0u64;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for shard in &self.shards {
            for (total, b) in buckets.iter_mut().zip(&shard.buckets) {
                *total += b.load(Ordering::Relaxed);
            }
            rejected += shard.rejected.load(Ordering::Relaxed);
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
            min = min.min(f64::from_bits(shard.min_bits.load(Ordering::Relaxed)));
            max = max.max(f64::from_bits(shard.max_bits.load(Ordering::Relaxed)));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, rejected, sum, min, max }
    }

    pub(crate) fn reset(&self) {
        for shard in &self.shards {
            shard.reset();
        }
    }
}

/// An immutable copy of a histogram's state: mergeable across threads and
/// the unit from which quantiles are extracted.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, length [`BUCKETS`].
    pub buckets: Vec<u64>,
    /// Total accepted samples.
    pub count: u64,
    /// Samples rejected as negative or non-finite.
    pub rejected: u64,
    /// Sum of accepted samples.
    pub sum: f64,
    /// Smallest accepted sample (`+inf` when empty).
    pub min: f64,
    /// Largest accepted sample (`-inf` when empty).
    pub max: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            rejected: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl HistogramSnapshot {
    /// Merge two snapshots (associative and commutative up to float
    /// summation order in `sum`; bucket counts merge exactly).
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            rejected: self.rejected + other.rejected,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Mean of accepted samples, `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate for `p in [0, 1]` by linear interpolation inside
    /// the covering bucket, clamped to the observed `[min, max]` so a
    /// single-sample histogram reports that sample exactly at every `p`.
    /// Returns `0.0` when empty.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = p * (self.count - 1) as f64;
        let mut before = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (before + n - 1) as f64 >= target {
                let lower = bucket_lower(i);
                let upper = bucket_upper(i);
                let within = ((target - before as f64 + 1.0) / n as f64).clamp(0.0, 1.0);
                return (lower + (upper - lower) * within).clamp(self.min, self.max);
            }
            before += n;
        }
        self.max
    }

    /// Median (`quantile(0.5)`).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_flag() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(true))
    }

    #[test]
    fn bucket_boundaries_at_exact_powers_of_two() {
        // 2^k must land in the bucket whose upper bound is exactly 2^k,
        // for every exponent the histogram covers.
        for k in -OFFSET..(BUCKETS as i32 - OFFSET) {
            let v = pow2(k);
            let i = bucket_index(v).unwrap();
            assert_eq!(i as i32, k + OFFSET, "2^{k} misbucketed to {i}");
            assert_eq!(bucket_upper(i), v, "upper bound of bucket {i} should be 2^{k}");
        }
        // Just above a power of two moves to the next bucket; just below stays.
        let v = 4.0f64;
        assert_eq!(bucket_index(v).unwrap(), bucket_index(v + v * 1e-9).unwrap() - 1);
        assert_eq!(bucket_index(v).unwrap(), bucket_index(v - v * 1e-9).unwrap());
    }

    #[test]
    fn every_sample_satisfies_its_buckets_interval_invariant() {
        // Dense sweep across many octaves: the exponent-bit index must
        // place each value in the bucket with `lower < v <= upper`
        // (modulo clamping at the ends of the covered range).
        let mut v = 1.37e-11;
        while v < 1e12 {
            let i = bucket_index(v).unwrap();
            if i < BUCKETS - 1 {
                assert!(v <= bucket_upper(i), "{v} above bucket {i}");
            }
            if i > 0 {
                assert!(v > bucket_lower(i), "{v} below bucket {i}");
            }
            v *= 1.618;
        }
    }

    #[test]
    fn zero_lands_in_bucket_zero() {
        assert_eq!(bucket_index(0.0), Some(0));
        assert_eq!(bucket_index(f64::MIN_POSITIVE), Some(0));
    }

    #[test]
    fn overflow_clamps_to_top_bucket() {
        assert_eq!(bucket_index(1e30), Some(BUCKETS - 1));
        assert_eq!(bucket_index(f64::MAX), Some(BUCKETS - 1));
    }

    #[test]
    fn non_finite_and_negative_are_rejected() {
        assert_eq!(bucket_index(f64::NAN), None);
        assert_eq!(bucket_index(f64::INFINITY), None);
        assert_eq!(bucket_index(f64::NEG_INFINITY), None);
        assert_eq!(bucket_index(-1.0), None);
        let h = Histogram::new(enabled_flag());
        assert!(!h.record(f64::NAN));
        assert!(!h.record(-3.0));
        assert!(h.record(3.0));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.rejected, 2);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::new(enabled_flag());
        assert!(h.record(3.25));
        let s = h.snapshot();
        assert_eq!(s.p50(), 3.25);
        assert_eq!(s.p99(), 3.25);
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 3.25);
        assert_eq!(s.mean(), 3.25);
    }

    #[test]
    fn quantiles_are_monotone_and_ordered() {
        let h = Histogram::new(enabled_flag());
        for i in 1..=1000 {
            assert!(h.record(i as f64));
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
        assert!(s.p50() >= s.min && s.p99() <= s.max);
        // The true median is ~500; the log-bucketed estimate must land in
        // the covering bucket (256, 512].
        assert!(s.p50() > 256.0 && s.p50() <= 512.0, "p50 = {}", s.p50());
    }

    #[test]
    fn merge_is_associative_on_bucket_counts_and_exact_sums() {
        // Integer-valued samples keep `sum` exactly representable, so merge
        // associativity is exact for every field, not just the counts.
        let parts: Vec<HistogramSnapshot> = [1.0, 7.0, 1024.0]
            .iter()
            .map(|&base| {
                let h = Histogram::new(enabled_flag());
                for i in 0..50u32 {
                    assert!(h.record(base * f64::from(i + 1)));
                }
                h.snapshot()
            })
            .collect();
        let left = parts[0].merge(&parts[1]).merge(&parts[2]);
        let right = parts[0].merge(&parts[1].merge(&parts[2]));
        assert_eq!(left, right);
        assert_eq!(left.count, 150);
        assert_eq!(left.buckets.iter().sum::<u64>(), 150);
    }

    #[test]
    fn cross_thread_merge_matches_single_threaded_recording() {
        let shared = Histogram::new(enabled_flag());
        let locals: Vec<HistogramSnapshot> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|t| {
                    let shared = &shared;
                    scope.spawn(move || {
                        let local = Histogram::standalone();
                        for i in 0..100u64 {
                            let v = (t * 100 + i + 1) as f64;
                            assert!(shared.record(v));
                            assert!(local.record(v));
                        }
                        local.snapshot()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("recorder thread"))
                .collect()
        });
        let merged = locals
            .iter()
            .fold(HistogramSnapshot::default(), |acc, s| acc.merge(s));
        let direct = shared.snapshot();
        assert_eq!(merged.buckets, direct.buckets);
        assert_eq!(merged.count, direct.count);
        assert_eq!(merged.min, direct.min);
        assert_eq!(merged.max, direct.max);
        // Float summation order differs across threads; the totals must
        // still agree to rounding.
        assert!((merged.sum - direct.sum).abs() < 1e-6 * merged.sum.abs());
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let flag = Arc::new(AtomicBool::new(false));
        let c = Counter::new(flag.clone());
        let g = Gauge::new(flag.clone());
        let h = Histogram::new(flag.clone());
        c.add(5);
        g.set(9);
        assert!(h.record(1.0));
        assert!(h.record(f64::NAN), "disabled histograms do not even reject");
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        flag.store(true, Ordering::Relaxed);
        c.add(5);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::new(enabled_flag());
        g.set_max(3);
        g.set_max(1);
        assert_eq!(g.get(), 3);
        g.set(0);
        assert_eq!(g.get(), 0);
    }
}
