//! Chip architectures under advanced computing sanctions — the paper's
//! primary contribution, built on the workspace's substrates.
//!
//! * [`baseline`] — the modeled NVIDIA A100 reference point every result
//!   is compared against (simulated latencies, GA100 die area).
//! * [`optimize`] — sanction-compliant design optimisation: search the
//!   Table-3 sweeps for the fastest manufacturable designs under the
//!   October 2022 / October 2023 rules (§4.2, §4.3).
//! * [`indicators`] — architecture-first performance indicators: how much
//!   fixing one architectural parameter narrows the latency distribution
//!   of a TPP-capped design space (§5.3, Figures 11 and 12).
//! * [`classification`] — marketing-based vs architecture-based device
//!   classification (§5.2, Figures 9 and 10).
//! * [`externality`] — the economic-externality accounting of §4.4/§5.1:
//!   compliance cost overheads and a textbook deadweight-loss model.
//!
//! # Example
//!
//! ```no_run
//! use acs_core::prelude::*;
//! use acs_llm::{ModelConfig, WorkloadConfig};
//!
//! // §4.2: optimise an October-2022-compliant design for GPT-3.
//! let report = optimize_oct2022(&ModelConfig::gpt3_175b(), &WorkloadConfig::paper_default());
//! println!(
//!     "best TBT improves {:.1}% over the modeled A100",
//!     report.best_tbt_improvement() * 100.0
//! );
//! ```

pub mod baseline;
pub mod classification;
pub mod dossier;
pub mod externality;
pub mod fleet;
pub mod indicators;
pub mod optimize;
pub mod policy_design;

pub use baseline::A100Baseline;
pub use classification::{
    architectural_consistency, marketing_consistency, ArchClassifier, ConsistencyReport,
};
pub use dossier::compliance_dossier;
pub use fleet::{monoculture_capacity, plan_fleet, FleetOption, FleetPlan};
pub use externality::{deadweight_loss, ComplianceOverhead};
pub use indicators::{indicator_report, suggest_indicator, FixedParam, IndicatorColumn, LatencyMetric};
pub use optimize::{optimize_oct2022, optimize_oct2023, OptimizationReport};
pub use policy_design::{design_policies, evaluate_policy, PolicyCandidate, PolicyOutcome};

/// Commonly used items.
pub mod prelude {
    pub use crate::baseline::A100Baseline;
    pub use crate::classification::{
        architectural_consistency, marketing_consistency, ArchClassifier, ConsistencyReport,
    };
    pub use crate::dossier::compliance_dossier;
    pub use crate::externality::{deadweight_loss, ComplianceOverhead};
    pub use crate::indicators::{
        indicator_report, suggest_indicator, FixedParam, IndicatorColumn, LatencyMetric,
    };
    pub use crate::optimize::{optimize_oct2022, optimize_oct2023, OptimizationReport};
    pub use crate::policy_design::{
        design_policies, evaluate_policy, PolicyCandidate, PolicyOutcome,
    };
}
