//! Compliance dossiers: a human-readable report of one device's standing
//! under every modelled rule generation.
//!
//! This is the downstream-user feature the substrates add up to: given a
//! device's datasheet metrics, produce the markdown brief a compliance
//! or product team would circulate — current classification, how it got
//! there across the rule timeline, the density arithmetic, and the
//! redesign headroom (how much die area or TPP movement changes the
//! outcome).

use acs_policy::thresholds::{min_area_nac_dc, min_area_unregulated_dc};
use acs_policy::{
    classify_as_of, Acr2022, Acr2023, Classification, DeviceMetrics, MarketSegment,
};
use std::fmt::Write as _;

/// Render a markdown compliance dossier for `device`.
///
/// # Example
///
/// ```
/// use acs_core::compliance_dossier;
/// use acs_policy::{DeviceMetrics, MarketSegment};
///
/// let a800 = DeviceMetrics::new("A800", 4992.0, 400.0, 826.0, true,
///     MarketSegment::DataCenter);
/// let dossier = compliance_dossier(&a800);
/// assert!(dossier.contains("October 2023 rule (current): **License Required**"));
/// ```
#[must_use]
pub fn compliance_dossier(device: &DeviceMetrics) -> String {
    let r22 = Acr2022::published();
    let r23 = Acr2023::published();
    let mut out = String::new();
    let _ = writeln!(out, "# Export-control dossier: {}", device.name());
    let _ = writeln!(out);
    let _ = writeln!(out, "## Device metrics");
    let _ = writeln!(out, "- market segment: {}", device.market());
    let _ = writeln!(out, "- TPP: {:.0}", device.tpp().0);
    let _ = writeln!(
        out,
        "- aggregate bidirectional device bandwidth: {:.0} GB/s",
        device.device_bw_gb_s()
    );
    let _ = writeln!(out, "- total die area: {:.0} mm2", device.die_area_mm2());
    match device.performance_density() {
        Some(pd) => {
            let _ = writeln!(out, "- performance density: {:.2} TPP/mm2", pd.0);
        }
        None => {
            let _ = writeln!(out, "- performance density: n/a (planar die)");
        }
    }
    if device.mem_capacity_gib() > 0.0 {
        let _ = writeln!(
            out,
            "- memory: {:.0} GiB @ {:.0} GB/s",
            device.mem_capacity_gib(),
            device.mem_bw_gb_s()
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "## Classification timeline");
    for (year, month, label) in [
        (2022u16, 9u8, "September 2022 (pre-ACR)"),
        (2022, 10, "October 2022 rule"),
        (2023, 10, "October 2023 rule (current)"),
    ] {
        let _ = writeln!(out, "- {label}: **{}**", classify_as_of(device, year, month));
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "## Why");
    let c22 = r22.classify(device);
    if c22 == Classification::LicenseRequired {
        let _ = writeln!(
            out,
            "- October 2022: TPP {:.0} >= {:.0} and device bandwidth {:.0} >= {:.0} GB/s.",
            device.tpp().0,
            r22.tpp_threshold,
            device.device_bw_gb_s(),
            r22.device_bw_threshold_gb_s
        );
    } else {
        let _ = writeln!(
            out,
            "- October 2022: escapes (TPP {:.0} vs {:.0}, bandwidth {:.0} vs {:.0} GB/s — one limit suffices).",
            device.tpp().0,
            r22.tpp_threshold,
            device.device_bw_gb_s(),
            r22.device_bw_threshold_gb_s
        );
    }
    let c23 = r23.classify(device);
    let _ = writeln!(out, "- October 2023 as marketed: {c23}.");
    let rebranded = r23.classify_as(device, device.market().opposite());
    if rebranded.is_restricted() != c23.is_restricted() {
        let _ = writeln!(
            out,
            "- marketing sensitivity: rebranded as {} it would be **{rebranded}** — a false-{} device (§5.2).",
            device.market().opposite(),
            match device.market() {
                MarketSegment::DataCenter => "data-center",
                MarketSegment::NonDataCenter => "non-data-center",
            }
        );
    }

    if device.market() == MarketSegment::DataCenter && c23.is_restricted() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Redesign headroom (October 2023, data center)");
        let tpp = device.tpp().0;
        let escape = min_area_unregulated_dc(&r23, tpp);
        let nac = min_area_nac_dc(&r23, tpp);
        if escape.is_finite() {
            let _ = writeln!(
                out,
                "- full escape at this TPP needs > {escape:.0} mm2 of applicable die area{}",
                if escape > 860.0 { " (multi-chip module territory)" } else { "" }
            );
        } else {
            let _ = writeln!(out, "- no die area escapes at TPP >= 4800; reduce TPP first.");
        }
        if nac.is_finite() && nac < escape {
            let _ = writeln!(out, "- NAC eligibility needs > {nac:.0} mm2.");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a800() -> DeviceMetrics {
        DeviceMetrics::new("A800 80GB", 4992.0, 400.0, 826.0, true, MarketSegment::DataCenter)
            .with_memory(80.0, 2039.0)
    }

    #[test]
    fn a800_dossier_tells_the_paper_story() {
        let d = compliance_dossier(&a800());
        assert!(d.contains("# Export-control dossier: A800 80GB"));
        assert!(d.contains("pre-ACR"), "timeline present");
        assert!(d.contains("October 2022 rule: **Not Applicable**"));
        assert!(d.contains("October 2023 rule (current): **License Required**"));
        assert!(d.contains("no die area escapes at TPP >= 4800"));
    }

    #[test]
    fn false_dc_device_gets_a_marketing_note() {
        let l40 = DeviceMetrics::new("L40", 2896.0, 32.0, 608.5, true, MarketSegment::DataCenter);
        let d = compliance_dossier(&l40);
        assert!(d.contains("marketing sensitivity"), "L40 is a false-DC device:\n{d}");
        assert!(d.contains("Redesign headroom"));
        // 2896 TPP escape floor: 2896 / 1.6 = 1810 mm² — MCM territory.
        assert!(d.contains("1810"));
        assert!(d.contains("multi-chip module"));
    }

    #[test]
    fn planar_device_reports_na_density() {
        let old = DeviceMetrics::new("planar", 100.0, 8.0, 200.0, false, MarketSegment::NonDataCenter);
        let d = compliance_dossier(&old);
        assert!(d.contains("n/a (planar die)"));
        assert!(!d.contains("Redesign headroom"));
    }

    #[test]
    fn unrestricted_consumer_device_is_clean() {
        let gtx = DeviceMetrics::new("GTX 1660", 160.0, 16.0, 284.0, true, MarketSegment::NonDataCenter);
        let d = compliance_dossier(&gtx);
        assert!(d.contains("**Not Applicable**"));
        assert!(!d.contains("marketing sensitivity"));
    }
}
