//! Architecture-first performance indicators (§5.3, Figures 11 and 12).
//!
//! A TPP ceiling alone leaves a wide latency distribution across the
//! compliant design space. Fixing one architectural parameter narrows the
//! distribution; the narrowing factor measures how strongly that
//! parameter predicts workload performance.

use acs_dse::{narrowing_factor, Distribution, EvaluatedDesign, SweptParams};
use std::fmt;

/// Which latency a column summarises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyMetric {
    /// Time to first token (prefill).
    Ttft,
    /// Time between tokens (decode).
    Tbt,
}

impl LatencyMetric {
    fn of(self, d: &EvaluatedDesign) -> f64 {
        match self {
            LatencyMetric::Ttft => d.ttft_s,
            LatencyMetric::Tbt => d.tbt_s,
        }
    }
}

impl fmt::Display for LatencyMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyMetric::Ttft => write!(f, "TTFT"),
            LatencyMetric::Tbt => write!(f, "TBT"),
        }
    }
}

/// A single architectural parameter pinned to one value.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FixedParam {
    /// Lanes per core.
    Lanes(u32),
    /// L1 KiB per core.
    L1Kib(u32),
    /// L2 MiB.
    L2Mib(u32),
    /// HBM bandwidth in TB/s.
    HbmTbS(f64),
    /// Device bandwidth in GB/s.
    DeviceBwGbS(f64),
    /// Systolic array dimension.
    SystolicDim(u32),
}

impl FixedParam {
    /// Whether a design's parameters match this constraint.
    #[must_use]
    pub fn matches(self, p: &SweptParams) -> bool {
        match self {
            FixedParam::Lanes(v) => p.lanes_per_core == v,
            FixedParam::L1Kib(v) => p.l1_kib == v,
            FixedParam::L2Mib(v) => p.l2_mib == v,
            FixedParam::HbmTbS(v) => (p.hbm_tb_s - v).abs() < 1e-9,
            FixedParam::DeviceBwGbS(v) => (p.device_bw_gb_s - v).abs() < 1e-9,
            FixedParam::SystolicDim(v) => p.systolic_dim == v,
        }
    }

    /// The column labels used in Figures 11 and 12.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            FixedParam::Lanes(v) => format!("{v} Lane"),
            FixedParam::L1Kib(v) => format!("{v} KB L1"),
            FixedParam::L2Mib(v) => format!("{v} MB L2"),
            FixedParam::HbmTbS(v) => format!("{v} TB/s M. BW"),
            FixedParam::DeviceBwGbS(v) => format!("{v:.0} GB/s D. BW"),
            FixedParam::SystolicDim(v) => format!("{v}x{v} Systolic"),
        }
    }

    /// Figure 11's fixed-parameter columns (performance-enhancing values
    /// from the Table-3 sweep).
    #[must_use]
    pub fn fig11_columns() -> Vec<FixedParam> {
        vec![
            FixedParam::Lanes(1),
            FixedParam::L1Kib(1024),
            FixedParam::L2Mib(48),
            FixedParam::HbmTbS(2.8),
            FixedParam::DeviceBwGbS(500.0),
        ]
    }

    /// Figure 12's fixed-parameter columns (performance-restricting
    /// values from the Table-5 sweep).
    #[must_use]
    pub fn fig12_columns() -> Vec<FixedParam> {
        vec![
            FixedParam::Lanes(8),
            FixedParam::L1Kib(32),
            FixedParam::L2Mib(8),
            FixedParam::HbmTbS(0.8),
            FixedParam::DeviceBwGbS(400.0),
        ]
    }
}

/// One column of a Figure-11/12-style distribution plot.
#[derive(Debug, Clone, PartialEq)]
pub struct IndicatorColumn {
    /// Column label ("TPP Only" or a fixed parameter).
    pub label: String,
    /// Latency metric summarised.
    pub metric: LatencyMetric,
    /// Distribution of that latency over the column's designs (seconds).
    pub distribution: Distribution,
    /// Range narrowing relative to the TPP-only column (1.0 for the
    /// TPP-only column itself).
    pub narrowing: f64,
}

/// Build the Figure-11/12 columns: a "TPP Only" column over all `designs`
/// plus one column per fixed parameter. Designs are typically
/// pre-filtered to the reticle limit, as in the paper. Returns an empty
/// vector when `designs` is empty or a column has no members.
#[must_use]
pub fn indicator_report(
    designs: &[EvaluatedDesign],
    metric: LatencyMetric,
    columns: &[FixedParam],
) -> Vec<IndicatorColumn> {
    let all: Vec<f64> = designs.iter().map(|d| metric.of(d)).collect();
    let Some(full) = Distribution::from_samples(&all) else {
        return Vec::new();
    };
    let mut out = vec![IndicatorColumn {
        label: "TPP Only".to_owned(),
        metric,
        distribution: full,
        narrowing: 1.0,
    }];
    for &col in columns {
        let subset: Vec<f64> = designs
            .iter()
            .filter(|d| col.matches(&d.params))
            .map(|d| metric.of(d))
            .collect();
        if let Some(dist) = Distribution::from_samples(&subset) {
            out.push(IndicatorColumn {
                label: col.label(),
                metric,
                distribution: dist,
                narrowing: narrowing_factor(&full, &dist),
            });
        }
    }
    out
}

/// Enumerate every fixed-parameter column present in `designs` (one per
/// distinct value of each swept parameter) and return the one that
/// narrows `metric`'s distribution the most, with its narrowing factor.
///
/// This is the automated version of §5.3's manual column choice: given a
/// design space, which single architectural constraint is the strongest
/// performance indicator? Columns covering fewer than `min_count` designs
/// or the whole space are skipped. Returns `None` when no column
/// qualifies.
#[must_use]
pub fn suggest_indicator(
    designs: &[EvaluatedDesign],
    metric: LatencyMetric,
    min_count: usize,
) -> Option<(FixedParam, f64)> {
    let mut candidates: Vec<FixedParam> = Vec::new();
    let mut push_unique = |p: FixedParam| {
        if !candidates.contains(&p) {
            candidates.push(p);
        }
    };
    for d in designs {
        push_unique(FixedParam::Lanes(d.params.lanes_per_core));
        push_unique(FixedParam::L1Kib(d.params.l1_kib));
        push_unique(FixedParam::L2Mib(d.params.l2_mib));
        push_unique(FixedParam::HbmTbS(d.params.hbm_tb_s));
        push_unique(FixedParam::DeviceBwGbS(d.params.device_bw_gb_s));
        push_unique(FixedParam::SystolicDim(d.params.systolic_dim));
    }
    candidates
        .into_iter()
        .filter_map(|col| {
            let members = designs.iter().filter(|d| col.matches(&d.params)).count();
            if members < min_count || members == designs.len() {
                return None;
            }
            let report = indicator_report(designs, metric, &[col]);
            report.get(1).map(|c| (col, c.narrowing))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_dse::{DseRunner, SweepSpec};
    use acs_llm::{ModelConfig, WorkloadConfig};

    fn small_designs() -> Vec<EvaluatedDesign> {
        let spec = SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![1, 4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 2.8],
            device_bw_gb_s: vec![600.0],
        };
        DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
            .run(&spec, 4800.0)
    }

    #[test]
    fn tpp_only_column_comes_first_with_unit_narrowing() {
        let designs = small_designs();
        let cols = indicator_report(&designs, LatencyMetric::Tbt, &[FixedParam::HbmTbS(2.8)]);
        assert_eq!(cols[0].label, "TPP Only");
        assert_eq!(cols[0].narrowing, 1.0);
        assert_eq!(cols[0].distribution.count, designs.len());
    }

    #[test]
    fn fixing_memory_bandwidth_narrows_tbt_sharply() {
        // §5.3's headline mechanism: TBT distributions collapse when
        // memory bandwidth is pinned.
        let designs = small_designs();
        let cols = indicator_report(&designs, LatencyMetric::Tbt, &[FixedParam::HbmTbS(2.8)]);
        let bw_col = &cols[1];
        assert!(bw_col.narrowing > 3.0, "narrowing = {}", bw_col.narrowing);
    }

    #[test]
    fn fixing_lanes_narrows_ttft_more_than_tbt() {
        let designs = small_designs();
        let ttft = indicator_report(&designs, LatencyMetric::Ttft, &[FixedParam::Lanes(1)]);
        let tbt = indicator_report(&designs, LatencyMetric::Tbt, &[FixedParam::Lanes(1)]);
        assert!(
            ttft[1].narrowing > tbt[1].narrowing,
            "lanes are a prefill indicator: {} vs {}",
            ttft[1].narrowing,
            tbt[1].narrowing
        );
    }

    #[test]
    fn unmatched_columns_are_dropped() {
        let designs = small_designs();
        let cols =
            indicator_report(&designs, LatencyMetric::Ttft, &[FixedParam::L2Mib(999)]);
        assert_eq!(cols.len(), 1, "only the TPP Only column remains");
    }

    #[test]
    fn empty_design_space_yields_no_columns() {
        assert!(indicator_report(&[], LatencyMetric::Ttft, &[]).is_empty());
    }

    #[test]
    fn suggest_indicator_finds_memory_bandwidth_for_decode() {
        let designs = small_designs();
        let (col, factor) =
            suggest_indicator(&designs, LatencyMetric::Tbt, 2).expect("a column qualifies");
        assert!(matches!(col, FixedParam::HbmTbS(_)), "suggested {col:?}");
        assert!(factor > 1.0);
    }

    #[test]
    fn suggest_indicator_ignores_tiny_columns() {
        let designs = small_designs();
        // With min_count above every column size, nothing qualifies.
        assert!(suggest_indicator(&designs, LatencyMetric::Tbt, designs.len() + 1).is_none());
        assert!(suggest_indicator(&[], LatencyMetric::Tbt, 1).is_none());
    }

    #[test]
    fn figure_column_presets_have_five_entries() {
        assert_eq!(FixedParam::fig11_columns().len(), 5);
        assert_eq!(FixedParam::fig12_columns().len(), 5);
    }

    #[test]
    fn labels_match_figure_axis_text() {
        assert_eq!(FixedParam::Lanes(1).label(), "1 Lane");
        assert_eq!(FixedParam::L1Kib(1024).label(), "1024 KB L1");
        assert_eq!(FixedParam::L2Mib(48).label(), "48 MB L2");
        assert_eq!(FixedParam::HbmTbS(2.8).label(), "2.8 TB/s M. BW");
        assert_eq!(FixedParam::DeviceBwGbS(500.0).label(), "500 GB/s D. BW");
    }
}
