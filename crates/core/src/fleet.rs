//! Fleet planning under TPP-denominated quotas.
//!
//! The January 2025 diffusion framework caps the *cumulative TPP* a
//! destination may import. But serving capacity is not TPP: decoding
//! rides memory bandwidth. This module answers the planner's question —
//! given a device menu and a TPP allocation, which fleet maximises decode
//! throughput? — and thereby measures how loosely a TPP quota actually
//! caps AI serving capacity.

use acs_hw::SystemConfig;
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{decode_throughput_tokens_per_s, Simulator};

/// A purchasable node type.
#[derive(Debug, Clone)]
pub struct FleetOption {
    /// Display name.
    pub name: String,
    /// TPP charged against the quota per node (devices × device TPP).
    pub tpp_per_node: f64,
    /// Decode throughput per node, tokens/s.
    pub tokens_per_s_per_node: f64,
}

impl FleetOption {
    /// Evaluate a node type for `model` under the paper workload.
    #[must_use]
    pub fn evaluate(name: impl Into<String>, system: &SystemConfig, model: &ModelConfig) -> Self {
        let work = WorkloadConfig::paper_default();
        let sim = Simulator::new(system.clone());
        FleetOption {
            name: name.into(),
            tpp_per_node: system.device().tpp().0 * f64::from(system.device_count()),
            tokens_per_s_per_node: decode_throughput_tokens_per_s(&sim, model, &work),
        }
    }

    /// Serving capacity bought per unit of quota (tokens/s per TPP).
    #[must_use]
    pub fn throughput_per_tpp(&self) -> f64 {
        if self.tpp_per_node <= 0.0 {
            return 0.0;
        }
        self.tokens_per_s_per_node / self.tpp_per_node
    }
}

/// A planned fleet: node counts per option plus totals.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// `(option name, nodes)` in purchase order.
    pub purchases: Vec<(String, u64)>,
    /// Total decode throughput, tokens/s.
    pub total_tokens_per_s: f64,
    /// Quota consumed, TPP.
    pub tpp_spent: f64,
}

/// Spend `tpp_allocation` greedily on the highest
/// throughput-per-TPP option (optimal here, since options are divisible
/// down to single nodes and independent).
#[must_use]
pub fn plan_fleet(options: &[FleetOption], tpp_allocation: f64) -> FleetPlan {
    let mut best: Vec<&FleetOption> = options.iter().collect();
    best.sort_by(|a, b| b.throughput_per_tpp().total_cmp(&a.throughput_per_tpp()));
    let mut remaining = tpp_allocation;
    let mut purchases = Vec::new();
    let mut total = 0.0;
    for opt in best {
        if opt.tpp_per_node <= 0.0 {
            continue;
        }
        let nodes = (remaining / opt.tpp_per_node).floor() as u64;
        if nodes == 0 {
            continue;
        }
        remaining -= nodes as f64 * opt.tpp_per_node;
        total += nodes as f64 * opt.tokens_per_s_per_node;
        purchases.push((opt.name.clone(), nodes));
    }
    FleetPlan { purchases, total_tokens_per_s: total, tpp_spent: tpp_allocation - remaining }
}

/// Capacity of an all-one-option fleet under the same allocation, for
/// comparison against [`plan_fleet`]'s mix.
#[must_use]
pub fn monoculture_capacity(option: &FleetOption, tpp_allocation: f64) -> f64 {
    if option.tpp_per_node <= 0.0 {
        return 0.0;
    }
    (tpp_allocation / option.tpp_per_node).floor() * option.tokens_per_s_per_node
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_hw::{DeviceConfig, SystolicDims};

    fn options() -> Vec<FleetOption> {
        let model = ModelConfig::gpt3_175b();
        let a100 = SystemConfig::quad(DeviceConfig::a100_like()).unwrap();
        let h20ish = SystemConfig::quad(
            DeviceConfig::builder()
                .name("h20ish")
                .core_count(51)
                .lanes_per_core(4)
                .systolic(SystolicDims::square(16))
                .l2_mib(60)
                .hbm_bandwidth_tb_s(4.0)
                .device_bandwidth_gb_s(900.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        vec![
            FleetOption::evaluate("A100 node", &a100, &model),
            FleetOption::evaluate("H20-class node", &h20ish, &model),
        ]
    }

    #[test]
    fn low_tpp_bandwidth_heavy_nodes_win_per_quota_unit() {
        let opts = options();
        let a100 = &opts[0];
        let h20 = &opts[1];
        // The compute-capped node delivers several times more serving
        // capacity per unit of TPP-denominated quota.
        assert!(
            h20.throughput_per_tpp() > 3.0 * a100.throughput_per_tpp(),
            "{} vs {}",
            h20.throughput_per_tpp(),
            a100.throughput_per_tpp()
        );
    }

    #[test]
    fn planner_prefers_the_efficient_option() {
        let opts = options();
        let plan = plan_fleet(&opts, 10.0e6);
        assert_eq!(plan.purchases[0].0, "H20-class node");
        // The mix beats an all-A100 monoculture by a wide margin.
        let mono = monoculture_capacity(&opts[0], 10.0e6);
        assert!(plan.total_tokens_per_s > 2.0 * mono);
        assert!(plan.tpp_spent <= 10.0e6 + 1e-6);
    }

    #[test]
    fn leftover_quota_is_bounded_by_one_node() {
        let opts = options();
        let alloc = 1.0e6;
        let plan = plan_fleet(&opts, alloc);
        let min_node = opts.iter().map(|o| o.tpp_per_node).fold(f64::INFINITY, f64::min);
        assert!(alloc - plan.tpp_spent < min_node);
    }

    #[test]
    fn degenerate_options_are_skipped() {
        let broken = FleetOption {
            name: "zero".into(),
            tpp_per_node: 0.0,
            tokens_per_s_per_node: 100.0,
        };
        let plan = plan_fleet(std::slice::from_ref(&broken), 1e6);
        assert!(plan.purchases.is_empty());
        assert_eq!(monoculture_capacity(&broken, 1e6), 0.0);
        assert_eq!(broken.throughput_per_tpp(), 0.0);
    }
}
