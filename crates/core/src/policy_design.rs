//! Automated architecture-first policy design (§5.4 made executable).
//!
//! A policy is a bundle of architectural caps. Its quality has two axes:
//!
//! * **effectiveness** — how much it slows the workload-of-interest: the
//!   best decode (TBT) and prefill (TTFT) latencies achievable by any
//!   manufacturable design satisfying the caps, relative to the A100
//!   baseline (≥ 1; higher = stronger throttle);
//! * **collateral** — the fraction of today's *consumer* devices the
//!   caps would sweep up (the §5.1 negative externality).
//!
//! [`design_policies`] evaluates a candidate grid on both axes and
//! extracts the Pareto-efficient set: the menu a regulator actually
//! chooses from.

use crate::baseline::A100Baseline;
use acs_devices::GpuDatabase;
use acs_dse::{pareto_front, DseRunner, SweepSpec};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_policy::MarketSegment;
use std::fmt;

/// A candidate policy: a TPP ceiling plus optional architectural caps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyCandidate {
    /// TPP ceiling (designs must sit strictly below).
    pub tpp_cap: f64,
    /// Memory-bandwidth ceiling in TB/s, if any.
    pub mem_bw_cap_tb_s: Option<f64>,
    /// L1-capacity ceiling in KiB per core, if any.
    pub l1_cap_kib: Option<u32>,
}

impl fmt::Display for PolicyCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TPP<{:.0}", self.tpp_cap)?;
        if let Some(bw) = self.mem_bw_cap_tb_s {
            write!(f, " + mem<={bw}TB/s")?;
        }
        if let Some(l1) = self.l1_cap_kib {
            write!(f, " + L1<={l1}KiB")?;
        }
        Ok(())
    }
}

/// A candidate's measured position on the effectiveness/collateral plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// The candidate.
    pub candidate: PolicyCandidate,
    /// Best compliant TBT ÷ A100 TBT (≥ values mean stronger throttling).
    pub decode_slowdown: f64,
    /// Best compliant TTFT ÷ A100 TTFT.
    pub prefill_slowdown: f64,
    /// Fraction of consumer devices in the database the caps restrict.
    pub consumer_collateral: f64,
    /// Number of manufacturable designs satisfying the caps.
    pub design_count: usize,
}

/// Evaluate one candidate against a sweep and the device database.
#[must_use]
pub fn evaluate_policy(
    candidate: PolicyCandidate,
    runner: &DseRunner,
    sweep: &SweepSpec,
    baseline: &A100Baseline,
    db: &GpuDatabase,
) -> PolicyOutcome {
    // Restrict the sweep to cap-satisfying values, then evaluate.
    let mut spec = sweep.clone();
    if let Some(bw) = candidate.mem_bw_cap_tb_s {
        spec.hbm_tb_s.retain(|&v| v <= bw + 1e-9);
    }
    if let Some(l1) = candidate.l1_cap_kib {
        spec.l1_kib.retain(|&v| v <= l1);
    }
    let designs: Vec<_> = runner
        .run(&spec, candidate.tpp_cap)
        .into_iter()
        .filter(|d| d.within_reticle)
        .collect();
    let best = |f: fn(&acs_dse::EvaluatedDesign) -> f64| {
        designs.iter().map(f).fold(f64::INFINITY, f64::min)
    };
    let decode_slowdown = best(|d| d.tbt_s) / baseline.tbt_s;
    let prefill_slowdown = best(|d| d.ttft_s) / baseline.ttft_s;

    // Collateral: a consumer device is swept up when it exceeds the TPP
    // cap or the memory-bandwidth cap (GB/s comparison).
    let consumer: Vec<_> = db.by_market(MarketSegment::NonDataCenter);
    let restricted = consumer
        .iter()
        .filter(|r| {
            r.tpp >= candidate.tpp_cap
                || candidate
                    .mem_bw_cap_tb_s
                    .is_some_and(|bw| r.mem_bw_gb_s > bw * 1000.0)
        })
        .count();
    PolicyOutcome {
        candidate,
        decode_slowdown,
        prefill_slowdown,
        consumer_collateral: restricted as f64 / consumer.len().max(1) as f64,
        design_count: designs.len(),
    }
}

/// Evaluate a grid of candidates and return `(outcomes, pareto_indices)`:
/// the Pareto front maximises decode slowdown while minimising consumer
/// collateral.
#[must_use]
pub fn design_policies(
    candidates: &[PolicyCandidate],
    model: &ModelConfig,
    workload: &WorkloadConfig,
    sweep: &SweepSpec,
    db: &GpuDatabase,
) -> (Vec<PolicyOutcome>, Vec<usize>) {
    let runner = DseRunner::new(model.clone(), *workload);
    let baseline = A100Baseline::simulate(model, workload);
    let outcomes: Vec<PolicyOutcome> = candidates
        .iter()
        .map(|&c| evaluate_policy(c, &runner, sweep, &baseline, db))
        .collect();
    // Minimise (collateral, −decode_slowdown).
    let front = pareto_front(
        &outcomes,
        |o| o.consumer_collateral,
        |o| -o.decode_slowdown,
    );
    (outcomes, front)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![64, 192],
            l2_mib: vec![40],
            hbm_tb_s: vec![0.8, 2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    fn grid() -> Vec<PolicyCandidate> {
        vec![
            PolicyCandidate { tpp_cap: 4800.0, mem_bw_cap_tb_s: None, l1_cap_kib: None },
            PolicyCandidate { tpp_cap: 4800.0, mem_bw_cap_tb_s: Some(1.6), l1_cap_kib: None },
            PolicyCandidate { tpp_cap: 1600.0, mem_bw_cap_tb_s: None, l1_cap_kib: None },
        ]
    }

    #[test]
    fn memory_cap_throttles_decode_without_consumer_collateral() {
        let (outcomes, _) = design_policies(
            &grid(),
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            &small_sweep(),
            &GpuDatabase::curated_65(),
        );
        let tpp_only = &outcomes[0];
        let with_bw = &outcomes[1];
        // Same TPP cap, added memory cap: decode throttled much harder…
        assert!(
            with_bw.decode_slowdown > 1.5 * tpp_only.decode_slowdown,
            "{} vs {}",
            with_bw.decode_slowdown,
            tpp_only.decode_slowdown
        );
        // …with zero additional consumer collateral: a 1.6 TB/s cap sits
        // above every GDDR-class gaming part (≈ 1 TB/s max) and below the
        // HBM systems that matter for AI decoding.
        assert!(
            (with_bw.consumer_collateral - tpp_only.consumer_collateral).abs() < 1e-9,
            "collateral {} vs {}",
            with_bw.consumer_collateral,
            tpp_only.consumer_collateral
        );
    }

    #[test]
    fn lowering_the_tpp_cap_raises_collateral() {
        let (outcomes, _) = design_policies(
            &grid(),
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            &small_sweep(),
            &GpuDatabase::curated_65(),
        );
        assert!(
            outcomes[2].consumer_collateral > outcomes[0].consumer_collateral,
            "a 1600 TPP cap sweeps up gaming flagships"
        );
        assert!(outcomes[2].prefill_slowdown > outcomes[0].prefill_slowdown);
    }

    #[test]
    fn pareto_front_is_nonempty_and_valid() {
        let (outcomes, front) = design_policies(
            &grid(),
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            &small_sweep(),
            &GpuDatabase::curated_65(),
        );
        assert!(!front.is_empty());
        for &i in &front {
            assert!(outcomes[i].design_count > 0 || outcomes[i].decode_slowdown.is_infinite());
        }
    }

    #[test]
    fn display_formats_candidates() {
        let c = PolicyCandidate {
            tpp_cap: 4800.0,
            mem_bw_cap_tb_s: Some(1.0),
            l1_cap_kib: Some(64),
        };
        assert_eq!(c.to_string(), "TPP<4800 + mem<=1TB/s + L1<=64KiB");
    }
}
