//! Sanction-compliant design optimisation (§4.2, §4.3).

use crate::baseline::A100Baseline;
use acs_dse::{DseRunner, EvaluatedDesign, SweepSpec};
use acs_llm::{ModelConfig, WorkloadConfig};

/// Result of optimising a design space against the A100 baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationReport {
    /// Baseline the improvements are measured against.
    pub baseline: A100Baseline,
    /// All evaluated designs (including invalid ones, flagged).
    pub designs: Vec<EvaluatedDesign>,
    /// Index (into `designs`) of the fastest-TTFT valid design.
    pub best_ttft_idx: Option<usize>,
    /// Index of the fastest-TBT valid design.
    pub best_tbt_idx: Option<usize>,
    /// Number of designs rejected by the reticle limit.
    pub reticle_violations: usize,
    /// Number of designs rejected by the October 2023 PD rule
    /// (0 for October 2022 studies, where PD is not filtered).
    pub pd_violations: usize,
}

impl OptimizationReport {
    /// The fastest-TTFT valid design, if any survived the filters.
    #[must_use]
    pub fn best_ttft(&self) -> Option<&EvaluatedDesign> {
        self.best_ttft_idx.map(|i| &self.designs[i])
    }

    /// The fastest-TBT valid design.
    #[must_use]
    pub fn best_tbt(&self) -> Option<&EvaluatedDesign> {
        self.best_tbt_idx.map(|i| &self.designs[i])
    }

    /// Fractional TTFT improvement of the best valid design over the
    /// baseline (positive = faster than the A100). 0 when nothing valid.
    #[must_use]
    pub fn best_ttft_improvement(&self) -> f64 {
        self.best_ttft().map_or(0.0, |d| 1.0 - d.ttft_s / self.baseline.ttft_s)
    }

    /// Fractional TBT improvement of the best valid design.
    #[must_use]
    pub fn best_tbt_improvement(&self) -> f64 {
        self.best_tbt().map_or(0.0, |d| 1.0 - d.tbt_s / self.baseline.tbt_s)
    }
}

fn build_report(
    baseline: A100Baseline,
    designs: Vec<EvaluatedDesign>,
    valid: impl Fn(&EvaluatedDesign) -> bool,
    count_pd: bool,
) -> OptimizationReport {
    let reticle_violations = designs.iter().filter(|d| !d.within_reticle).count();
    let pd_violations = if count_pd {
        designs.iter().filter(|d| !d.pd_unregulated_2023).count()
    } else {
        0
    };
    let argmin = |key: fn(&EvaluatedDesign) -> f64| -> Option<usize> {
        designs
            .iter()
            .enumerate()
            .filter(|(_, d)| valid(d))
            .min_by(|(_, a), (_, b)| key(a).total_cmp(&key(b)))
            .map(|(i, _)| i)
    };
    let best_ttft_idx = argmin(|d| d.ttft_s);
    let best_tbt_idx = argmin(|d| d.tbt_s);
    OptimizationReport {
        baseline,
        designs,
        best_ttft_idx,
        best_tbt_idx,
        reticle_violations,
        pd_violations,
    }
}

/// §4.2: explore the Table-3 design space under the October 2022 rule
/// (TPP ≈ 4800, device bandwidth 600 GB/s) and pick the fastest
/// manufacturable (single-die, reticle-fitting) designs.
#[must_use]
pub fn optimize_oct2022(model: &ModelConfig, workload: &WorkloadConfig) -> OptimizationReport {
    let baseline = A100Baseline::simulate(model, workload);
    let runner = DseRunner::new(model.clone(), *workload);
    let designs = runner.run(&SweepSpec::table3_fig6(), 4800.0);
    build_report(baseline, designs, |d| d.within_reticle, false)
}

/// §4.3: explore the Table-3 design space at one of the October 2023
/// rule's TPP tiers (1600, 2400, or 4800) and pick the fastest designs
/// that fit the reticle *and* escape the rule entirely (NAC eligibility
/// is not relied upon, §4.3).
#[must_use]
pub fn optimize_oct2023(
    model: &ModelConfig,
    workload: &WorkloadConfig,
    tpp_tier: f64,
) -> OptimizationReport {
    let baseline = A100Baseline::simulate(model, workload);
    let runner = DseRunner::new(model.clone(), *workload);
    let designs = runner.run(&SweepSpec::table3_fig7(), tpp_tier);
    build_report(baseline, designs, EvaluatedDesign::valid_2023, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> ModelConfig {
        ModelConfig::gpt3_175b()
    }

    fn work() -> WorkloadConfig {
        WorkloadConfig::paper_default()
    }

    #[test]
    fn oct2022_finds_decode_improvements_like_the_paper() {
        // §4.2: "GPT-3's optimized design decreases TTFT by 1.2% and TBT
        // by 27% compared to an A100 baseline."
        let report = optimize_oct2022(&gpt3(), &work());
        assert_eq!(report.designs.len(), 512);
        let tbt_gain = report.best_tbt_improvement();
        assert!(tbt_gain > 0.15 && tbt_gain < 0.40, "TBT gain = {tbt_gain}");
        // TTFT gains are small but the best design should not be much
        // slower than the baseline.
        let ttft_gain = report.best_ttft_improvement();
        assert!(ttft_gain > -0.05 && ttft_gain < 0.15, "TTFT gain = {ttft_gain}");
    }

    #[test]
    fn oct2022_best_designs_use_max_memory_bandwidth() {
        let report = optimize_oct2022(&gpt3(), &work());
        let best = report.best_tbt().unwrap();
        assert_eq!(best.params.hbm_tb_s, 3.2, "decode optimum maxes memory bandwidth");
        assert!(best.within_reticle);
    }

    #[test]
    fn oct2023_4800_tier_has_no_valid_designs() {
        // §4.3: "The low performance density requirement make all 4800
        // TPP designs invalid."
        let report = optimize_oct2023(&gpt3(), &work(), 4800.0);
        assert_eq!(report.best_ttft_idx, None);
        assert_eq!(report.best_tbt_idx, None);
        assert_eq!(report.pd_violations, report.designs.len());
    }

    #[test]
    fn oct2023_2400_tier_ttft_is_much_slower_than_a100() {
        // §4.3: fastest compliant 2400-TPP TTFT is ~79% slower (GPT-3).
        let report = optimize_oct2023(&gpt3(), &work(), 2400.0);
        let best = report.best_ttft().expect("some 2400 designs are valid");
        let slowdown = best.ttft_s / report.baseline.ttft_s - 1.0;
        assert!(slowdown > 0.4, "slowdown = {slowdown}");
        assert!(best.valid_2023());
        // But decode still improves (§4.3: 26.1% faster for 2400 TPP).
        let tbt_gain = report.best_tbt_improvement();
        assert!(tbt_gain > 0.1, "TBT gain = {tbt_gain}");
    }

    #[test]
    fn oct2023_2400_tier_filters_most_designs() {
        // §4.4: of 1536 points, only ~56 valid; ~1429 violate PD and ~51
        // violate the reticle. Our area model shifts the split somewhat,
        // but PD must dominate and valid designs must be scarce.
        let report = optimize_oct2023(&gpt3(), &work(), 2400.0);
        let valid = report.designs.iter().filter(|d| d.valid_2023()).count();
        assert!(valid > 0 && valid < 300, "valid = {valid}");
        assert!(report.pd_violations > 1000, "pd = {}", report.pd_violations);
    }
}
