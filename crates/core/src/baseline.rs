//! The modeled NVIDIA A100 baseline.
//!
//! Latencies are simulated with the same analytical model as the DSE
//! designs; the die area is the published GA100 figure (§4: "we use the
//! GA100 die area for the modeled A100").

use acs_hw::{CostModel, DeviceConfig, SystemConfig};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{SimParams, Simulator};

/// Published GA100 die area in mm².
pub const GA100_DIE_AREA_MM2: f64 = 826.0;

/// The restricted-baseline reference point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A100Baseline {
    /// Per-layer prefill latency (s).
    pub ttft_s: f64,
    /// Per-layer decode latency (s).
    pub tbt_s: f64,
    /// Die area (GA100 published figure, mm²).
    pub die_area_mm2: f64,
    /// Raw silicon die cost at that area (USD).
    pub die_cost_usd: f64,
    /// TPP of the modeled device.
    pub tpp: f64,
}

impl A100Baseline {
    /// Simulate the baseline for a model/workload on the paper's 4-device
    /// node with calibrated parameters.
    #[must_use]
    pub fn simulate(model: &ModelConfig, workload: &WorkloadConfig) -> Self {
        Self::simulate_with(model, workload, SimParams::calibrated(), 4)
    }

    /// Simulate the baseline with explicit calibration and node size.
    #[must_use]
    pub fn simulate_with(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        params: SimParams,
        device_count: u32,
    ) -> Self {
        let device = DeviceConfig::a100_like();
        let tpp = device.tpp().0;
        let system =
            SystemConfig::new(device, device_count).expect("device_count nonzero");
        let sim = Simulator::with_params(system, params);
        A100Baseline {
            ttft_s: sim.ttft_s(model, workload),
            tbt_s: sim.tbt_s(model, workload),
            die_area_mm2: GA100_DIE_AREA_MM2,
            die_cost_usd: CostModel::n7().die_cost_usd(GA100_DIE_AREA_MM2),
            tpp,
        }
    }

    /// TTFT × die cost (ms·$), for Figure 8 reference points.
    #[must_use]
    pub fn ttft_cost_product(&self) -> f64 {
        self.ttft_s * 1e3 * self.die_cost_usd
    }

    /// TBT × die cost (ms·$).
    #[must_use]
    pub fn tbt_cost_product(&self) -> f64 {
        self.tbt_s * 1e3 * self.die_cost_usd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_baseline_is_in_the_paper_band() {
        let b = A100Baseline::simulate(
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
        );
        assert!(b.ttft_s * 1e3 > 200.0 && b.ttft_s * 1e3 < 360.0);
        assert!(b.tbt_s * 1e3 > 1.0 && b.tbt_s * 1e3 < 1.9);
        assert_eq!(b.die_area_mm2, 826.0);
        assert!((b.tpp - 4992.0).abs() < 25.0);
    }

    #[test]
    fn cost_products_are_consistent() {
        let b = A100Baseline::simulate(
            &ModelConfig::llama3_8b(),
            &WorkloadConfig::paper_default(),
        );
        assert!((b.ttft_cost_product() - b.ttft_s * 1e3 * b.die_cost_usd).abs() < 1e-9);
        assert!(b.die_cost_usd > 100.0, "GA100-sized dies are expensive");
    }
}
