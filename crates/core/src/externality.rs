//! Economic-externality accounting (§2.4, §4.4, §5.1).
//!
//! Two tools:
//!
//! * [`ComplianceOverhead`] — the Table-4 comparison: what complying with
//!   the performance-density floor costs in silicon (area, raw die cost,
//!   yielded cost) relative to an unconstrained design of equal
//!   performance.
//! * [`deadweight_loss`] — the textbook linear supply/demand deadweight
//!   loss of a supply restriction, quantifying the "market distortion"
//!   framing of §2.4. This is an illustrative microeconomic model, not an
//!   empirical market study.

use acs_dse::EvaluatedDesign;

/// Relative cost of regulatory compliance between two designs of similar
/// performance (Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplianceOverhead {
    /// Compliant area / non-compliant area.
    pub area_ratio: f64,
    /// Compliant raw die cost / non-compliant raw die cost.
    pub die_cost_ratio: f64,
    /// Compliant yielded (good-die) cost ratio.
    pub good_die_cost_ratio: f64,
    /// Compliant TTFT / non-compliant TTFT (≈ 1 when performance parity).
    pub ttft_ratio: f64,
    /// Compliant TBT / non-compliant TBT.
    pub tbt_ratio: f64,
}

impl ComplianceOverhead {
    /// Compare a PD-compliant design against a non-compliant one.
    #[must_use]
    pub fn between(compliant: &EvaluatedDesign, non_compliant: &EvaluatedDesign) -> Self {
        ComplianceOverhead {
            area_ratio: compliant.die_area_mm2 / non_compliant.die_area_mm2,
            die_cost_ratio: compliant.die_cost_usd / non_compliant.die_cost_usd,
            good_die_cost_ratio: compliant.good_die_cost_usd / non_compliant.good_die_cost_usd,
            ttft_ratio: compliant.ttft_s / non_compliant.ttft_s,
            tbt_ratio: compliant.tbt_s / non_compliant.tbt_s,
        }
    }
}

/// Deadweight loss of a quantity restriction under linear supply/demand.
///
/// A market clears at quantity `q0` and price `p0`. A regulation caps the
/// tradable quantity at `(1 − restriction) · q0`. With linear demand of
/// price elasticity `demand_elasticity` (negative) and linear supply of
/// elasticity `supply_elasticity` (positive) around the equilibrium, the
/// lost surplus is the usual triangle
/// `DWL = ½ · Δq · (p_demand(q) − p_supply(q))`.
///
/// Returns the loss in the same units as `p0 · q0`. Degenerate inputs
/// (non-positive `q0`/`p0`, restriction outside `[0, 1]`, elasticities of
/// the wrong sign) return 0.
#[must_use]
pub fn deadweight_loss(
    q0: f64,
    p0: f64,
    restriction: f64,
    demand_elasticity: f64,
    supply_elasticity: f64,
) -> f64 {
    if q0 <= 0.0
        || p0 <= 0.0
        || !(0.0..=1.0).contains(&restriction)
        || demand_elasticity >= 0.0
        || supply_elasticity <= 0.0
    {
        return 0.0;
    }
    let dq = restriction * q0;
    // Inverse linear curves through (q0, p0):
    //   p_demand(q) = p0 + (q − q0) / (ε_d · q0 / p0)
    //   p_supply(q) = p0 + (q − q0) / (ε_s · q0 / p0)
    let q = q0 - dq;
    let p_demand = p0 + (q - q0) * p0 / (demand_elasticity * q0);
    let p_supply = p0 + (q - q0) * p0 / (supply_elasticity * q0);
    0.5 * dq * (p_demand - p_supply).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_dse::{DseRunner, SweepSpec};
    use acs_llm::{ModelConfig, WorkloadConfig};

    #[test]
    fn table4_style_overhead_shows_compliance_premium() {
        // Rebuild the Table-4 pair: 2400-TPP, 16×16, 2 lanes, 3.2 TB/s;
        // compliant = big caches (1 MiB L1 / 48 MiB L2), non-compliant =
        // A100-like caches (192 KiB / 32 MiB).
        let spec = SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![2],
            l1_kib: vec![192, 1024],
            l2_mib: vec![32, 48],
            hbm_tb_s: vec![3.2],
            device_bw_gb_s: vec![600.0],
        };
        let designs = DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
            .run(&spec, 2400.0);
        let compliant = designs
            .iter()
            .find(|d| d.params.l1_kib == 1024 && d.params.l2_mib == 48)
            .unwrap();
        let non = designs
            .iter()
            .find(|d| d.params.l1_kib == 192 && d.params.l2_mib == 32)
            .unwrap();
        assert!(compliant.pd_unregulated_2023);
        assert!(!non.pd_unregulated_2023);

        let o = ComplianceOverhead::between(compliant, non);
        // Paper: 44% larger, 52.3% higher silicon cost, ~2x good-die cost,
        // with near-identical performance.
        assert!(o.area_ratio > 1.3 && o.area_ratio < 1.6, "area ratio = {}", o.area_ratio);
        assert!(o.die_cost_ratio > 1.35 && o.die_cost_ratio < 1.75, "cost = {}", o.die_cost_ratio);
        assert!(o.good_die_cost_ratio > 1.7 && o.good_die_cost_ratio < 2.4);
        assert!(o.ttft_ratio > 0.9 && o.ttft_ratio < 1.1, "ttft ratio = {}", o.ttft_ratio);
        assert!(o.tbt_ratio > 0.9 && o.tbt_ratio < 1.1, "tbt ratio = {}", o.tbt_ratio);
    }

    #[test]
    fn deadweight_loss_grows_quadratically_with_restriction() {
        let small = deadweight_loss(1e6, 10_000.0, 0.1, -1.0, 1.0);
        let large = deadweight_loss(1e6, 10_000.0, 0.2, -1.0, 1.0);
        assert!(small > 0.0);
        assert!((large / small - 4.0).abs() < 1e-9, "linear curves => quadratic DWL");
    }

    #[test]
    fn deadweight_loss_handles_degenerate_inputs() {
        assert_eq!(deadweight_loss(0.0, 10.0, 0.1, -1.0, 1.0), 0.0);
        assert_eq!(deadweight_loss(10.0, 10.0, 1.5, -1.0, 1.0), 0.0);
        assert_eq!(deadweight_loss(10.0, 10.0, 0.1, 1.0, 1.0), 0.0);
        assert_eq!(deadweight_loss(10.0, 10.0, 0.0, -1.0, 1.0), 0.0);
    }

    #[test]
    fn inelastic_demand_raises_the_loss() {
        // Chips have few substitutes: the less elastic the demand, the
        // larger the surplus destroyed by the same restriction.
        let elastic = deadweight_loss(1e6, 10_000.0, 0.2, -2.0, 1.0);
        let inelastic = deadweight_loss(1e6, 10_000.0, 0.2, -0.5, 1.0);
        assert!(inelastic > elastic);
    }
}
