//! Marketing-based vs architecture-based device classification
//! (§5.2, Figures 9 and 10).

use acs_devices::{DeviceRecord, GpuDatabase};
use acs_policy::{Acr2023, MarketSegment};

/// Outcome of a consistency study over a device database.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConsistencyReport {
    /// Consistently classified data-center devices.
    pub consistent_dc: Vec<String>,
    /// "False data center" devices: DC-marketed, restricted today, but
    /// unrestricted if rebranded consumer (Fig. 9) / classified non-DC by
    /// the architectural rule (Fig. 10).
    pub false_dc: Vec<String>,
    /// Consistently classified non-data-center devices.
    pub consistent_ndc: Vec<String>,
    /// "False non-data center" devices: consumer-marketed and free today,
    /// but restricted if treated as data-center devices.
    pub false_ndc: Vec<String>,
}

impl ConsistencyReport {
    /// Total devices covered.
    #[must_use]
    pub fn total(&self) -> usize {
        self.consistent_dc.len()
            + self.false_dc.len()
            + self.consistent_ndc.len()
            + self.false_ndc.len()
    }
}

/// Figure 9: classify every device under its marketed segment and under
/// the opposite segment; devices whose restriction status flips are
/// "false" devices.
#[must_use]
pub fn marketing_consistency(db: &GpuDatabase, rule: &Acr2023) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    for r in db {
        let m = r.to_metrics();
        let as_marketed = rule.classify(&m).is_restricted();
        let rebranded = rule.classify_as(&m, r.market.opposite()).is_restricted();
        let name = r.name.to_string();
        match (r.market, as_marketed, rebranded) {
            (MarketSegment::DataCenter, true, false) => report.false_dc.push(name),
            (MarketSegment::DataCenter, _, _) => report.consistent_dc.push(name),
            (MarketSegment::NonDataCenter, false, true) => report.false_ndc.push(name),
            (MarketSegment::NonDataCenter, _, _) => report.consistent_ndc.push(name),
        }
    }
    report
}

/// The architecture-based data-center test of Figure 10: a device is a
/// data-center part when its memory capacity or memory bandwidth exceeds
/// thresholds that separate current product lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchClassifier {
    /// Capacity above which a device is data-center class (GiB).
    pub min_capacity_gib: f64,
    /// Bandwidth above which a device is data-center class (GB/s).
    pub min_bandwidth_gb_s: f64,
}

impl ArchClassifier {
    /// The paper's thresholds: "more than 32 GB memory or more than
    /// 1600 GB/s memory bandwidth".
    #[must_use]
    pub fn paper() -> Self {
        ArchClassifier { min_capacity_gib: 32.0, min_bandwidth_gb_s: 1600.0 }
    }

    /// Classify a device by its memory architecture.
    #[must_use]
    pub fn classify(&self, record: &DeviceRecord) -> MarketSegment {
        if record.mem_gib > self.min_capacity_gib
            || record.mem_bw_gb_s > self.min_bandwidth_gb_s
        {
            MarketSegment::DataCenter
        } else {
            MarketSegment::NonDataCenter
        }
    }
}

impl Default for ArchClassifier {
    fn default() -> Self {
        Self::paper()
    }
}

/// Figure 10: compare the architectural classification against marketing.
/// A "false data center" device is DC-marketed but architecturally
/// non-DC; a "false non-data center" device is consumer-marketed but
/// architecturally DC.
#[must_use]
pub fn architectural_consistency(
    db: &GpuDatabase,
    classifier: &ArchClassifier,
) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    for r in db {
        let arch = classifier.classify(r);
        let name = r.name.to_string();
        match (r.market, arch) {
            (MarketSegment::DataCenter, MarketSegment::DataCenter) => {
                report.consistent_dc.push(name);
            }
            (MarketSegment::DataCenter, MarketSegment::NonDataCenter) => {
                report.false_dc.push(name);
            }
            (MarketSegment::NonDataCenter, MarketSegment::NonDataCenter) => {
                report.consistent_ndc.push(name);
            }
            (MarketSegment::NonDataCenter, MarketSegment::DataCenter) => {
                report.false_ndc.push(name);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marketing_study_matches_paper_counts() {
        // §5.2: "Existing specifications result in 4 false data center
        // devices and 7 false non-data center devices."
        let report = marketing_consistency(&GpuDatabase::curated_65(), &Acr2023::default());
        assert_eq!(report.total(), 65);
        assert_eq!(report.false_dc.len(), 4, "false DC: {:?}", report.false_dc);
        assert_eq!(report.false_ndc.len(), 7, "false NDC: {:?}", report.false_ndc);
    }

    #[test]
    fn paper_named_false_devices_appear() {
        let report = marketing_consistency(&GpuDatabase::curated_65(), &Acr2023::default());
        // "Flagship gaming GPUs such as the NVIDIA RTX 4080 and AMD RX
        // 7900 XTX would be regulated if they were marketed as data
        // center devices."
        assert!(report.false_ndc.iter().any(|n| n == "RTX 4080"));
        assert!(report.false_ndc.iter().any(|n| n == "RX 7900 XTX"));
        // "Low TPP data center devices such as the NVIDIA L40 and A40
        // would not be restricted if they were instead marketed as
        // workstation devices."
        assert!(report.false_dc.iter().any(|n| n == "L40"));
        assert!(report.false_dc.iter().any(|n| n == "A40"));
    }

    #[test]
    fn architectural_study_matches_paper_counts() {
        // §5.2: "This classification results in no false non-data center
        // and only two false data center devices", the L2 and L4.
        let report =
            architectural_consistency(&GpuDatabase::curated_65(), &ArchClassifier::paper());
        assert_eq!(report.total(), 65);
        assert!(report.false_ndc.is_empty(), "false NDC: {:?}", report.false_ndc);
        let mut false_dc = report.false_dc.clone();
        false_dc.sort();
        assert_eq!(false_dc, vec!["L2".to_owned(), "L4".to_owned()]);
    }

    #[test]
    fn arch_classifier_uses_either_threshold() {
        let c = ArchClassifier::paper();
        let mut r = GpuDatabase::curated_65().find("RTX 4090").unwrap().clone();
        assert_eq!(c.classify(&r), MarketSegment::NonDataCenter);
        r.mem_gib = 33.0;
        assert_eq!(c.classify(&r), MarketSegment::DataCenter);
        r.mem_gib = 24.0;
        r.mem_bw_gb_s = 1601.0;
        assert_eq!(c.classify(&r), MarketSegment::DataCenter);
    }

    #[test]
    fn thresholds_are_exclusive_at_the_boundary() {
        // "more than 32 GB": exactly 32 GiB (Quadro GV100) stays non-DC.
        let c = ArchClassifier::paper();
        let db = GpuDatabase::curated_65();
        let gv100 = db.find("Quadro GV100").unwrap();
        assert_eq!(gv100.mem_gib, 32.0);
        assert_eq!(c.classify(gv100), MarketSegment::NonDataCenter);
    }
}
