//! Quickstart: describe a device, check it against the export-control
//! rules, and simulate LLM inference on it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acs::prelude::*;
use acs_hw::HwError;

fn main() -> Result<(), HwError> {
    // 1. Describe an accelerator with the LLMCompass-style template.
    //    This is the paper's modeled NVIDIA A100 baseline.
    let a100 = DeviceConfig::a100_like();
    println!("device: {a100}");
    println!("TPP: {} (peak {:.0} TOPS fp16)", a100.tpp(), a100.peak_tops());

    // 2. Model its die area and silicon cost.
    let area = AreaModel::n7().die_area(&a100);
    let cost = CostModel::n7();
    println!(
        "modeled die: {:.0} mm2 ({:.0} mm2 of SRAM), ${:.0} per die, ${:.0} per good die",
        area.total_mm2(),
        area.sram_mm2(),
        cost.die_cost_usd(area.total_mm2()),
        cost.good_die_cost_usd(area.total_mm2()),
    );

    // 3. Classify it under both generations of the Advanced Computing
    //    Rule. The A100 is the canonical restricted device.
    let metrics = DeviceMetrics::from_config(&a100, 826.0, MarketSegment::DataCenter);
    println!("October 2022 rule: {}", Acr2022::default().classify(&metrics));
    println!("October 2023 rule: {}", Acr2023::default().classify(&metrics));

    // 4. Simulate one Transformer layer of GPT-3 175B on a 4-device node.
    let node = SystemConfig::quad(a100)?;
    let sim = Simulator::new(node);
    let gpt3 = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();
    println!(
        "GPT-3 175B, {work}: TTFT {:.1} ms, TBT {:.3} ms per layer",
        sim.ttft_s(&gpt3, &work) * 1e3,
        sim.tbt_s(&gpt3, &work) * 1e3,
    );

    // 5. Inspect the per-operator breakdown of the decode step.
    let decode = sim.simulate_layer(&gpt3, &work, work.decode_phase());
    println!("\ndecode breakdown:\n{decode}");
    Ok(())
}
