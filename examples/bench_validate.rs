//! Validate `BENCH_*.json` artefacts against the `acs-bench-v1` schema.
//!
//! `scripts/ci.sh` runs this after the smoke benches to guarantee the
//! benchmark output stays machine-readable: the perf trajectory across
//! commits is only useful if every artefact parses the same way.
//!
//! ```text
//! cargo run --example bench_validate -- BENCH_dse.json BENCH_serve.json
//! ```
//!
//! Each file must be a canonical-JSON object with `schema` equal to
//! `"acs-bench-v1"`, a non-empty string `suite`, and a non-empty `metrics`
//! object whose members are all finite numbers. Exits non-zero with a
//! per-file message on the first violation.
//!
//! `--min-dse-plan-speedup <ratio>` additionally requires every `dse`
//! suite artefact to carry a `plan_speedup` metric at or above the given
//! ratio — the CI floor for the plan-then-execute sweep pipeline against
//! its legacy reference. `--min-dse-factored-speedup <ratio>` is the
//! same floor for the `factored_speedup` metric: the dependency-keyed
//! factored evaluator against the planned pipeline it memoises.
//! `--min-dse-lattice-speedup <ratio>` floors the `lattice_speedup`
//! metric of the `lattice` suite: the fused-vector lattice engine
//! against the factored evaluator it supersedes.
//!
//! `--min-serve-cached-qps <qps>` and `--min-serve-unique-qps <qps>`
//! floor the `serve` suite's `repeated_qps` and `unique_qps` metrics:
//! the event-loop tier's cached and unique-work throughput under the
//! pipelined load generator.

use acs_errors::json::{parse, Value};
use std::process::ExitCode;

/// Require `metrics[name] >= floor` for a suite artefact.
fn check_floor(metrics: &[(String, Value)], name: &str, floor: f64) -> Result<(), String> {
    match metrics.iter().find(|(metric, _)| metric == name) {
        Some((_, Value::Number(v))) if *v >= floor => Ok(()),
        Some((_, Value::Number(v))) => Err(format!("{name} {v:.2} below the required {floor:.2}")),
        _ => Err(format!("suite is missing the {name} metric")),
    }
}

fn validate(path: &str, floors: &Floors) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = parse(text.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc.require_str("schema").map_err(|e| e.to_string())?;
    if schema != "acs-bench-v1" {
        return Err(format!("schema {schema:?}, expected \"acs-bench-v1\""));
    }
    let suite = doc.require_str("suite").map_err(|e| e.to_string())?;
    if suite.is_empty() {
        return Err("empty suite name".to_owned());
    }
    let Some(Value::Object(metrics)) = doc.get("metrics") else {
        return Err("missing or non-object \"metrics\"".to_owned());
    };
    if metrics.is_empty() {
        return Err("empty \"metrics\" object".to_owned());
    }
    for (name, value) in metrics {
        match value {
            Value::Number(v) if v.is_finite() => {}
            other => return Err(format!("metric {name:?} is not a finite number: {other:?}")),
        }
    }
    if suite == "dse" {
        if let Some(floor) = floors.plan_speedup {
            check_floor(metrics, "plan_speedup", floor)?;
        }
        if let Some(floor) = floors.factored_speedup {
            check_floor(metrics, "factored_speedup", floor)?;
        }
    }
    if suite == "lattice" {
        if let Some(floor) = floors.lattice_speedup {
            check_floor(metrics, "lattice_speedup", floor)?;
        }
    }
    if suite == "serve" {
        if let Some(floor) = floors.serve_cached_qps {
            check_floor(metrics, "repeated_qps", floor)?;
        }
        if let Some(floor) = floors.serve_unique_qps {
            check_floor(metrics, "unique_qps", floor)?;
        }
    }
    Ok(metrics.len())
}

#[derive(Default)]
struct Floors {
    plan_speedup: Option<f64>,
    factored_speedup: Option<f64>,
    lattice_speedup: Option<f64>,
    serve_cached_qps: Option<f64>,
    serve_unique_qps: Option<f64>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut floors = Floors::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--min-dse-plan-speedup"
            || arg == "--min-dse-factored-speedup"
            || arg == "--min-dse-lattice-speedup"
            || arg == "--min-serve-cached-qps"
            || arg == "--min-serve-unique-qps"
        {
            let slot = match arg.as_str() {
                "--min-dse-plan-speedup" => &mut floors.plan_speedup,
                "--min-dse-factored-speedup" => &mut floors.factored_speedup,
                "--min-serve-cached-qps" => &mut floors.serve_cached_qps,
                "--min-serve-unique-qps" => &mut floors.serve_unique_qps,
                _ => &mut floors.lattice_speedup,
            };
            match iter.next().as_deref().map(str::parse::<f64>) {
                Some(Ok(v)) if v.is_finite() && v > 0.0 => *slot = Some(v),
                _ => {
                    eprintln!("{arg} requires a positive ratio");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: bench_validate [--min-dse-plan-speedup <ratio>] \
             [--min-dse-factored-speedup <ratio>] \
             [--min-dse-lattice-speedup <ratio>] \
             [--min-serve-cached-qps <qps>] [--min-serve-unique-qps <qps>] <BENCH_*.json>..."
        );
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match validate(path, &floors) {
            Ok(count) => println!("{path}: ok ({count} metrics)"),
            Err(reason) => {
                eprintln!("{path}: INVALID: {reason}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
