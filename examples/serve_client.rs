//! End-to-end client for the `acs-serve` query service: screen a
//! compliant design, simulate it, repeat the simulation to demonstrate
//! the content-addressed cache, stream a policy what-if rule grid over
//! chunked transfer-encoding, and verify the cache hits through
//! `GET /v1/metrics`.
//!
//! ```text
//! cargo run --release --example serve_client              # in-process server
//! cargo run --release --example serve_client -- --addr 127.0.0.1:8737
//! ```
//!
//! Exits nonzero if any endpoint misbehaves or the repeated simulation
//! does not hit the cache.

use acs::serve::{http::HttpClient, ServeConfig, Server};
use acs_errors::json::parse;
use acs_errors::AcsError;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn call(
    client: &mut HttpClient,
    method: &str,
    path: &str,
    body: &str,
) -> Result<String, AcsError> {
    let (status, response) = client.request(method, path, body)?;
    if status != 200 {
        return Err(AcsError::Protocol {
            reason: format!("{method} {path} returned {status}: {response}"),
        });
    }
    Ok(response)
}

fn run(addr: SocketAddr) -> Result<(), AcsError> {
    // One keep-alive connection carries the whole conversation.
    let client = &mut HttpClient::new(addr, TIMEOUT);
    // 1. Screen a TPP-capped, bandwidth-rich design — the paper's §4
    //    compliant-architecture shape. The oversized L1 lowers performance
    //    density below the Oct-2023 threshold, so no export license applies.
    let screen_body = "{\"config\":{\"name\":\"compliant-3.2tb\",\"core_count\":96,\
                       \"l1_kib\":1024,\"hbm_tb_s\":3.2,\"device_bw_gb_s\":599.0}}";
    let screening = call(client, "POST", "/v1/screen", screen_body)?;
    let parsed = parse(&screening)?;
    let strictest = parsed
        .require("screening")?
        .require_str("strictest_acr")?
        .to_owned();
    println!("compliant design screens as: {strictest}");
    if strictest == "license_required" {
        return Err(AcsError::Protocol {
            reason: "the compliant design should not need an export license".to_owned(),
        });
    }

    // 2. Compare with a known restricted device from the database.
    let h100 = call(client, "POST", "/v1/screen", "{\"device\":\"H100 SXM\"}")?;
    let h100_class = parse(&h100)?
        .require("screening")?
        .require_str("strictest_acr")?
        .to_owned();
    println!("H100 SXM screens as: {h100_class}");
    if h100_class != "license_required" {
        return Err(AcsError::Protocol {
            reason: format!("H100 should be license_required, got {h100_class}"),
        });
    }

    // 3. Device lookup with a percent-encoded name.
    let detail = call(client, "GET", "/v1/devices/A800%2080GB", "")?;
    let name = parse(&detail)?.require("device")?.require_str("name")?.to_owned();
    println!("device lookup: {name}");

    // 4. Simulate the compliant design twice; the second run must be a
    //    cache hit (verified through the service's own metrics).
    let simulate_body = "{\"config\":{\"name\":\"compliant-3.2tb\",\"core_count\":96,\
                         \"l1_kib\":1024,\"hbm_tb_s\":3.2,\"device_bw_gb_s\":599.0},\
                         \"model\":\"llama3-8b\",\"trace\":{\"duration_s\":5}}";
    // On the event-loop tier a byte-identical repeat short-circuits in
    // the worker's raw front cache; on the pool tier it is a semantic
    // simulate-cache hit. Either way the sum must advance.
    let simulate_hits = |client: &mut HttpClient| -> Result<f64, AcsError> {
        let metrics = parse(&call(client, "GET", "/v1/metrics", "")?)?;
        let caches = metrics.require("caches")?;
        Ok(caches.require("simulate")?.require_f64("hits")?
            + caches.require("raw")?.require_f64("hits")?)
    };
    let before = simulate_hits(client)?;
    let first = call(client, "POST", "/v1/simulate", simulate_body)?;
    let second = call(client, "POST", "/v1/simulate", simulate_body)?;
    if first != second {
        return Err(AcsError::Protocol {
            reason: "repeated simulation returned a different body".to_owned(),
        });
    }
    let serving = parse(&first)?;
    let p50 = serving.require("serving")?.require_f64("p50_ttft_s")?;
    let p99 = serving.require("serving")?.require_f64("p99_ttft_s")?;
    println!("serving percentiles: p50 TTFT {:.1} ms, p99 TTFT {:.1} ms", p50 * 1e3, p99 * 1e3);

    let after = simulate_hits(client)?;
    if after < before + 1.0 {
        return Err(AcsError::Protocol {
            reason: format!(
                "repeated POST /v1/simulate did not hit the cache (hits {before} -> {after})"
            ),
        });
    }
    println!("cache verified: simulate hits {before} -> {after}");

    // 5. Policy what-if: a 4-variant rule grid streamed back as chunked
    //    NDJSON (the client reassembles the frames transparently), then
    //    repeated to verify the what-if response cache through metrics.
    let whatif_body = "{\"grid\":{\"tpp_license\":[2400,4800],\"mem_bw_license\":[0,800]}}";
    let whatif_before = parse(&call(client, "GET", "/v1/metrics", "")?)?
        .require("caches")?
        .require("whatif")?
        .require_f64("hits")?;
    let stream = call(client, "POST", "/v1/whatif", whatif_body)?;
    let lines: Vec<&str> = stream.lines().collect();
    let Some((trailer_line, records)) = lines.split_last() else {
        return Err(AcsError::Protocol { reason: "empty what-if stream".to_owned() });
    };
    if records.len() != 4 {
        return Err(AcsError::Protocol {
            reason: format!("what-if stream should carry 4 records, got {}", records.len()),
        });
    }
    let trailer = parse(trailer_line)?;
    let variants = trailer.require_f64("variants")?;
    let fleet_designs = trailer.require_f64("fleet_designs")?;
    println!("what-if grid: {variants} rule variants over a {fleet_designs}-design fleet");
    let repeat = call(client, "POST", "/v1/whatif", whatif_body)?;
    if repeat != stream {
        return Err(AcsError::Protocol {
            reason: "repeated what-if returned a different stream".to_owned(),
        });
    }
    let whatif_after = parse(&call(client, "GET", "/v1/metrics", "")?)?
        .require("caches")?
        .require("whatif")?
        .require_f64("hits")?;
    if whatif_after < whatif_before + 1.0 {
        return Err(AcsError::Protocol {
            reason: format!(
                "repeated POST /v1/whatif did not hit the cache (hits {whatif_before} -> {whatif_after})"
            ),
        });
    }
    println!("cache verified: what-if hits {whatif_before} -> {whatif_after}");
    Ok(())
}

fn main() -> ExitCode {
    // With --addr, talk to an already-running service (the CI smoke test
    // does this); otherwise bring one up in-process.
    let mut args = std::env::args().skip(1);
    let external = match (args.next().as_deref(), args.next()) {
        (Some("--addr"), Some(addr)) => match addr.parse::<SocketAddr>() {
            Ok(addr) => Some(addr),
            Err(e) => {
                eprintln!("serve_client: bad --addr {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, _) => None,
        _ => {
            eprintln!("usage: serve_client [--addr HOST:PORT]");
            return ExitCode::FAILURE;
        }
    };

    let outcome = match external {
        Some(addr) => run(addr),
        None => match Server::bind(ServeConfig::default()) {
            Ok(server) => {
                let addr = server.local_addr();
                println!("serve_client: in-process server on http://{addr}");
                let (handle, thread) = server.spawn();
                let outcome = run(addr);
                handle.shutdown();
                let _ = thread.join();
                outcome
            }
            Err(e) => Err(e),
        },
    };
    match outcome {
        Ok(()) => {
            println!("serve_client: all checks passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve_client: {e}");
            ExitCode::FAILURE
        }
    }
}
