//! Architecture-first policy design: prototype alternative rules and
//! measure their effect before anyone writes a Federal Register notice.
//!
//! Implements §5.3/§5.4's proposal: instead of theoretical-performance
//! ceilings alone, pin the architectural parameter that actually
//! bottlenecks the workload of interest — memory bandwidth for LLM
//! decoding, L1 capacity for prefill — and verify that the resulting
//! performance distribution is narrow (predictable) while gaming-class
//! devices stay sellable.
//!
//! A thin client of `acs::whatif`: candidate regimes are expressed as
//! rule specs, device impact comes from classification ledgers, and the
//! externality economics are the engine's reference economy. (For the
//! full batch treatment — whole rule grids with per-variant records —
//! POST the same parameters to acs-serve's `/v1/whatif`.)
//!
//! ```text
//! cargo run --release --example what_if_rules
//! ```

use acs::core::prelude::*;
use acs::devices::GpuDatabase;
use acs::dse::prelude::*;
use acs::llm::{ModelConfig, WorkloadConfig};
use acs::policy::{Acr2022, DeviceMetrics, MarketSegment, MemBwRule};
use acs::whatif::{ClassificationLedger, WhatIfConfig};

fn main() {
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();

    // Candidate policy: keep the TPP ceiling but add a memory-bandwidth
    // cap of 1 TB/s — the paper's decode-limiting indicator. Evaluate the
    // whole Table-5 design space under it.
    let designs = DseRunner::new(model.clone(), work).run(&SweepSpec::table5(), 4800.0);
    let manufacturable: Vec<EvaluatedDesign> =
        designs.into_iter().filter(|d| d.within_reticle).collect();

    let baseline = A100Baseline::simulate(&model, &work);
    for (label, columns) in [
        ("TPP ceiling only", vec![]),
        ("TPP + 0.8 TB/s memory-BW cap", vec![FixedParam::HbmTbS(0.8)]),
        ("TPP + 32 KB L1 cap", vec![FixedParam::L1Kib(32)]),
    ] {
        let cols = indicator_report(&manufacturable, LatencyMetric::Tbt, &columns);
        let col = cols.last().expect("column exists");
        println!(
            "{label:<32} TBT median {:+.1}% vs A100, range {:.3} ms ({:.1}x narrower)",
            (col.distribution.median / baseline.tbt_s - 1.0) * 100.0,
            col.distribution.range() * 1e3,
            col.narrowing,
        );
    }

    // How many of today's real gaming devices would such a rule touch?
    // Screen the consumer slice of the curated DB under the hypothetical
    // memory-bandwidth rule alone. None: consumer memory systems already
    // sit well under the cap.
    let db = GpuDatabase::curated_65();
    let consumer: Vec<DeviceMetrics> = db
        .iter()
        .filter(|r| r.market == MarketSegment::NonDataCenter)
        .map(|r| r.to_metrics())
        .collect();
    let mem_bw = MemBwRule { license_threshold_gb_s: 800.0 };
    let mem_bw_ledger = ClassificationLedger::screen_with(&consumer, |m| mem_bw.classify(m));
    let touched = mem_bw_ledger.restricted_names();
    println!(
        "\nconsumer devices above a hypothetical 800 GB/s memory-BW threshold: {touched:?}"
    );

    // Contrast with a blunt alternative: tightening the October 2022 TPP
    // threshold to 1600 would have swept up mid-range gaming cards.
    let blunt = Acr2022 { tpp_threshold: 1600.0, device_bw_threshold_gb_s: 0.0 };
    let blunt_ledger = ClassificationLedger::screen_with(&consumer, |m| blunt.classify(m));
    let swept = blunt_ledger.restricted_names();
    println!(
        "consumer devices a blunt TPP>=1600 rule would restrict ({}): {:?}",
        swept.len(),
        swept
    );

    // And the economics: restricting supply destroys surplus, priced with
    // the what-if engine's reference economy (a 1M-unit, $20k-average
    // accelerator market).
    let economy = WhatIfConfig::paper_default();
    for restriction in [0.1, 0.25, 0.5] {
        let dwl = deadweight_loss(
            economy.market_quantity,
            economy.market_price_usd,
            restriction,
            economy.demand_elasticity,
            economy.supply_elasticity,
        );
        println!(
            "supply restriction {:>4.0}% -> deadweight loss ${:.2}B",
            restriction * 100.0,
            dwl / 1e9
        );
    }
}
