//! Design a sanction-compliant LLM-inference accelerator.
//!
//! Walks the workflow of the paper's §4: sweep the architectural design
//! space under each rule generation, filter to manufacturable and
//! compliant designs, and report the best achievable prefill/decode
//! latencies and what compliance costs in silicon.
//!
//! ```text
//! cargo run --release --example sanction_compliant_design
//! ```

use acs::core::prelude::*;
use acs::llm::{ModelConfig, WorkloadConfig};

fn main() {
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();

    println!("=== October 2022 rule (TPP < 4800, device BW 600 GB/s) ===");
    let r22 = optimize_oct2022(&model, &work);
    println!(
        "{} designs explored, {} fit the reticle",
        r22.designs.len(),
        r22.designs.len() - r22.reticle_violations
    );
    if let Some(best) = r22.best_tbt() {
        println!(
            "best decode design: {} — TBT {:.3} ms ({:+.1}% vs A100), {:.0} mm2, ${:.0}/die",
            best.name,
            best.tbt_s * 1e3,
            (best.tbt_s / r22.baseline.tbt_s - 1.0) * 100.0,
            best.die_area_mm2,
            best.die_cost_usd,
        );
    }
    if let Some(best) = r22.best_ttft() {
        println!(
            "best prefill design: {} — TTFT {:.1} ms ({:+.1}% vs A100)",
            best.name,
            best.ttft_s * 1e3,
            (best.ttft_s / r22.baseline.ttft_s - 1.0) * 100.0,
        );
    }

    println!("\n=== October 2023 rule, 2400 TPP tier ===");
    let r23 = optimize_oct2023(&model, &work, 2400.0);
    let valid = r23.designs.iter().filter(|d| d.valid_2023()).count();
    println!(
        "{} designs explored, {} escape the rule and fit the reticle",
        r23.designs.len(),
        valid
    );
    match r23.best_ttft() {
        Some(best) => {
            println!(
                "fastest compliant design: TTFT {:.1} ms ({:+.1}% vs A100), \
                 die {:.0} mm2 at PD {:.2}",
                best.ttft_s * 1e3,
                (best.ttft_s / r23.baseline.ttft_s - 1.0) * 100.0,
                best.die_area_mm2,
                best.perf_density,
            );
            // What did the performance-density floor cost us? Compare to
            // the fastest design that violates it.
            if let Some(non) = r23
                .designs
                .iter()
                .filter(|d| d.within_reticle && !d.pd_unregulated_2023)
                .min_by(|a, b| a.ttft_s.total_cmp(&b.ttft_s))
            {
                let overhead = ComplianceOverhead::between(best, non);
                println!(
                    "vs fastest non-compliant: area x{:.2}, die cost x{:.2}, \
                     good-die cost x{:.2} for {:+.1}% TTFT",
                    overhead.area_ratio,
                    overhead.die_cost_ratio,
                    overhead.good_die_cost_ratio,
                    (overhead.ttft_ratio - 1.0) * 100.0,
                );
            }
        }
        None => println!("no compliant design exists at this tier"),
    }

    println!("\n=== October 2023 rule, 4800 TPP tier ===");
    let r48 = optimize_oct2023(&model, &work, 4800.0);
    println!(
        "{} designs explored, {} compliant — the PD floor forbids the whole tier \
         (a single die would need >3000 mm2)",
        r48.designs.len(),
        r48.designs.iter().filter(|d| d.valid_2023()).count()
    );
}
