//! Generate compliance dossiers and export-quota plans for a product line.
//!
//! ```text
//! cargo run --release --example compliance_dossier
//! ```

use acs::core::compliance_dossier;
use acs::devices::GpuDatabase;
use acs::policy::{DiffusionQuota, ExportLedger};

fn main() {
    let db = GpuDatabase::curated_65();

    // A dossier for the device at the heart of the paper's story.
    let a800 = db.find("A800").expect("A800 in database").to_metrics();
    println!("{}", compliance_dossier(&a800));

    // And for the gaming flagship the 2023 rule swept up.
    let rtx4090 = db.find("RTX 4090").expect("4090 in database").to_metrics();
    println!("{}", compliance_dossier(&rtx4090));

    // January 2025 diffusion framework: plan a tier-2 country's allocation
    // across a mixed portfolio.
    println!("# Diffusion-quota plan (tier-2 country, ~790M TPP)\n");
    let mut ledger = ExportLedger::new(DiffusionQuota::tier2_country());
    for (name, units) in [("H100", 20_000u64), ("H20", 100_000), ("L4", 200_000)] {
        let device = db.find(name).expect("device in database").to_metrics();
        let covered = ledger.ship(&device, units);
        println!(
            "- {name}: requested {units}, covered {covered} ({:.1}M TPP remaining)",
            ledger.remaining_tpp() / 1e6
        );
    }
}
