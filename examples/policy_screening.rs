//! Screen a product portfolio against every export-control generation.
//!
//! Emulates the compliance-screening workflow a device vendor (or
//! regulator) would run: classify all 65 GPUs of the 2018–2024 database
//! under the October 2022 and October 2023 rules, check commodity HBM
//! packages against the December 2024 rule, and quantify how well the
//! marketing-based classification holds together.
//!
//! ```text
//! cargo run --release --example policy_screening
//! ```

use acs::core::prelude::*;
use acs::devices::GpuDatabase;
use acs::policy::{Acr2022, Acr2023, Classification, HbmPackage, HbmRule2024};

fn main() {
    let db = GpuDatabase::curated_65();
    let r22 = Acr2022::published();
    let r23 = Acr2023::published();

    // Portfolio screening: who needs a licence under each generation?
    let mut counts = [[0u32; 3]; 2];
    for record in &db {
        let m = record.to_metrics();
        for (i, class) in [r22.classify(&m), r23.classify(&m)].into_iter().enumerate() {
            counts[i][match class {
                Classification::NotApplicable => 0,
                Classification::NacEligible => 1,
                Classification::LicenseRequired => 2,
            }] += 1;
        }
    }
    println!("65-device portfolio under both rule generations:");
    println!("{:<14} {:>14} {:>14} {:>18}", "rule", "not applicable", "NAC eligible", "license required");
    println!("{:<14} {:>14} {:>14} {:>18}", "October 2022", counts[0][0], counts[0][1], counts[0][2]);
    println!("{:<14} {:>14} {:>14} {:>18}", "October 2023", counts[1][0], counts[1][1], counts[1][2]);

    // Devices whose status changed between generations — the §2.2 story.
    println!("\nnewly restricted by the October 2023 update:");
    for record in &db {
        let m = record.to_metrics();
        if !r22.classify(&m).is_restricted() && r23.classify(&m).is_restricted() {
            println!("  {} ({}, {})", record.name, m.tpp(), r23.classify(&m));
        }
    }

    // The marketing-vs-architecture consistency studies (§5.2).
    let marketing = marketing_consistency(&db, &r23);
    println!(
        "\nmarketing-based classification: {} false DC {:?}, {} false non-DC",
        marketing.false_dc.len(),
        marketing.false_dc,
        marketing.false_ndc.len()
    );
    let arch = architectural_consistency(&db, &ArchClassifier::paper());
    println!(
        "memory-architecture classification: {} false DC {:?}, {} false non-DC",
        arch.false_dc.len(),
        arch.false_dc,
        arch.false_ndc.len()
    );

    // December 2024: commodity HBM screening.
    println!("\ncommodity HBM packages under the December 2024 rule:");
    let hbm_rule = HbmRule2024::published();
    for pkg in [
        HbmPackage::new("HBM2e stack (460 GB/s, 100 mm2)", 460.0, 100.0),
        HbmPackage::new("HBM3 stack (820 GB/s, 110 mm2)", 820.0, 110.0),
        HbmPackage::new("derated export stack (210 GB/s, 110 mm2)", 210.0, 110.0),
        HbmPackage::new("exception-band stack (320 GB/s, 110 mm2)", 320.0, 110.0),
    ] {
        println!(
            "  {:<44} density {:>5.2} GB/s/mm2 -> {}",
            pkg.name,
            pkg.bandwidth_density(),
            hbm_rule.classify(&pkg)
        );
    }
}
