//! Screen a product portfolio against every export-control generation.
//!
//! Emulates the compliance-screening workflow a device vendor (or
//! regulator) would run: classify all 65 GPUs of the 2018–2024 database
//! under the October 2022 and October 2023 rules, check commodity HBM
//! packages against the December 2024 rule, and quantify how well the
//! marketing-based classification holds together.
//!
//! A thin client of `acs::whatif`: the per-generation tallies, the
//! cross-generation flips, and the HBM screening all come from the
//! what-if engine's ledgers and reference data rather than hand-rolled
//! classification loops.
//!
//! ```text
//! cargo run --release --example policy_screening
//! ```

use acs::core::prelude::*;
use acs::devices::GpuDatabase;
use acs::policy::{Acr2022, Acr2023, DeviceMetrics};
use acs::whatif::{ClassificationLedger, RuleSpec, WhatIfEngine};

fn main() {
    let db = GpuDatabase::curated_65();
    let devices: Vec<DeviceMetrics> = db.iter().map(|r| r.to_metrics()).collect();
    let r22 = Acr2022::published();
    let r23 = Acr2023::published();

    // Portfolio screening: who needs a licence under each generation?
    let by_2022 = ClassificationLedger::screen_with(&devices, |m| r22.classify(m));
    let by_2023 = ClassificationLedger::screen_with(&devices, |m| r23.classify(m));
    println!("65-device portfolio under both rule generations:");
    println!(
        "{:<14} {:>14} {:>14} {:>18}",
        "rule", "not applicable", "NAC eligible", "license required"
    );
    for (label, ledger) in [("October 2022", &by_2022), ("October 2023", &by_2023)] {
        let c = ledger.counts();
        println!(
            "{label:<14} {:>14} {:>14} {:>18}",
            c.not_applicable, c.nac_eligible, c.license_required
        );
    }

    // Devices whose status changed between generations — the §2.2 story.
    println!("\nnewly restricted by the October 2023 update:");
    let delta = by_2023.delta_from(&by_2022);
    for name in &delta.newly_restricted {
        let metrics = devices.iter().find(|m| m.name() == name);
        let class = by_2023.classification_of(name);
        if let (Some(metrics), Some(class)) = (metrics, class) {
            println!("  {name} ({}, {class})", metrics.tpp());
        }
    }

    // The marketing-vs-architecture consistency studies (§5.2).
    let marketing = marketing_consistency(&db, &r23);
    println!(
        "\nmarketing-based classification: {} false DC {:?}, {} false non-DC",
        marketing.false_dc.len(),
        marketing.false_dc,
        marketing.false_ndc.len()
    );
    let arch = architectural_consistency(&db, &ArchClassifier::paper());
    println!(
        "memory-architecture classification: {} false DC {:?}, {} false non-DC",
        arch.false_dc.len(),
        arch.false_dc,
        arch.false_ndc.len()
    );

    // December 2024: the what-if engine's commodity HBM packages under
    // the baseline regime's package-level rule.
    println!("\ncommodity HBM packages under the December 2024 rule:");
    let baseline = RuleSpec::baseline();
    for pkg in WhatIfEngine::reference_hbm_packages() {
        println!(
            "  {:<44} density {:>5.2} GB/s/mm2 -> {}",
            pkg.name,
            pkg.bandwidth_density(),
            baseline.classify_hbm(&pkg)
        );
    }
}
