//! End-to-end telemetry coverage over the real DSE pipeline: span nesting
//! around the scoped-thread parallel evaluator, counter/histogram wiring,
//! and trace-structure determinism across identical runs.
//!
//! Everything here shares the process-global registry, so this file keeps
//! to a single `#[test]` (cargo would otherwise run sibling tests on
//! concurrent threads of this binary and interleave their events).

use acs_dse::{DseRunner, SweepSpec};
use acs_errors::json::{parse, Value};
use acs_llm::{ModelConfig, WorkloadConfig};
use std::sync::Arc;

fn small_spec() -> SweepSpec {
    SweepSpec {
        systolic_dims: vec![16],
        lanes_per_core: vec![2, 4],
        l1_kib: vec![192, 1024],
        l2_mib: vec![40],
        hbm_tb_s: vec![2.0, 3.2],
        device_bw_gb_s: vec![600.0],
    }
}

fn runner() -> DseRunner {
    DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
        .with_cache(Arc::new(acs_cache::ShardedCache::new(1024)))
}

/// Reduce a JSONL trace to its run-invariant structure: spans keep
/// `(id, parent, depth, name)`, instruments keep their names and exact
/// counts, and timing-derived fields (durations, sums, quantiles, bucket
/// contents of wall-time histograms) are dropped.
fn structure(trace: &str) -> Vec<String> {
    trace
        .lines()
        .map(|line| {
            let v = parse(line).expect("trace line parses");
            let kind = v.require_str("type").expect("type tag");
            match kind {
                "span" => format!(
                    "span id={} parent={} depth={} name={}",
                    v.require_u64("id").unwrap(),
                    v.require_u64("parent").unwrap(),
                    v.require_u64("depth").unwrap(),
                    v.require_str("name").unwrap(),
                ),
                "counter" | "gauge" => format!(
                    "{kind} name={} value={}",
                    v.require_str("name").unwrap(),
                    v.require_u64("value").unwrap(),
                ),
                "histogram" => format!(
                    "histogram name={} count={} rejected={}",
                    v.require_str("name").unwrap(),
                    v.require_u64("count").unwrap(),
                    v.require_u64("rejected").unwrap(),
                ),
                _ => line.to_owned(),
            }
        })
        .collect()
}

#[test]
fn profiled_sweep_nests_spans_and_replays_with_identical_structure() {
    let reg = acs_telemetry::global();
    reg.enable();
    let candidates = small_spec().candidates(4800.0);

    let run_once = |label: &str| -> String {
        reg.reset();
        {
            let _outer = acs_telemetry::span("test.sweep");
            let report = runner().run_report(&candidates);
            assert_eq!(report.total(), candidates.len(), "{label}: sweep covers every point");
            assert!(report.failures.is_empty(), "{label}: this spec has no failing points");
            // Opened *after* the scoped-thread evaluator returns: the
            // worker threads must not have disturbed this thread's span
            // stack, so this is still a child of `test.sweep`.
            let _post = acs_telemetry::span("test.post");
        }
        acs_telemetry::trace_jsonl(reg)
    };

    let first = run_once("first run");

    // --- span nesting and ordering around the parallel evaluator ---
    let events = reg.span_events();
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["test.post", "test.sweep"], "completion order: inner first");
    let sweep = events.iter().find(|e| e.name == "test.sweep").unwrap();
    let post = events.iter().find(|e| e.name == "test.post").unwrap();
    assert_eq!(sweep.parent, 0);
    assert_eq!(sweep.depth, 0);
    assert_eq!(post.parent, sweep.id, "post-evaluator span still nests under the outer span");
    assert_eq!(post.depth, 1);
    assert!(post.start_ns >= sweep.start_ns);
    assert!(post.dur_ns <= sweep.dur_ns, "child cannot outlast its parent");

    // --- the evaluator's per-point instrumentation fired ---
    let counters = reg.counter_values();
    let counter = |name: &str| {
        counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_default()
    };
    let n = candidates.len() as u64;
    assert_eq!(counter("dse.eval.ok"), n);
    assert_eq!(counter("dse.cache.misses"), n, "fresh cache: every point misses");
    let histograms = reg.histogram_snapshots();
    let point_us = &histograms.iter().find(|(name, _)| name == "dse.eval.point_us").unwrap().1;
    // The histogram's count doubles as the point count — there is no
    // separate counter on the hot path.
    assert_eq!(point_us.count, n, "one wall-time sample per evaluated point");
    assert!(point_us.min > 0.0);

    // --- identical inputs replay with identical trace structure ---
    let second = run_once("second run");
    assert_eq!(
        structure(&first),
        structure(&second),
        "span IDs/ordering and instrument names must not vary across runs",
    );

    // --- checkpoint I/O spans nest under the caller's span ---
    reg.reset();
    let dir = std::env::temp_dir().join(format!("acs-telemetry-e2e-{}", std::process::id()));
    let path = dir.join("sweep.ckpt.jsonl");
    {
        let _outer = acs_telemetry::span("test.resume");
        runner().run_report_resumable(&candidates, &path).expect("checkpointed sweep");
    }
    let events = reg.span_events();
    let outer = events.iter().find(|e| e.name == "test.resume").unwrap();
    let load = events.iter().find(|e| e.name == "dse.checkpoint.load").unwrap();
    assert_eq!(load.parent, outer.id, "checkpoint load span nests under the caller");
    assert_eq!(load.depth, 1);
    let counters = reg.counter_values();
    let appended =
        counters.iter().find(|(n, _)| n == "dse.checkpoint.appended").map_or(0, |(_, v)| *v);
    assert_eq!(appended, n, "every point appends one checkpoint line");

    // The trace export itself must be canonical JSON throughout.
    for line in acs_telemetry::trace_jsonl(reg).lines() {
        let v = parse(line).expect("line is valid JSON");
        assert!(matches!(v, Value::Object(_)));
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- factored leg-table economics are observable ---
    reg.reset();
    let factored = runner().run_factored(&small_spec(), 4800.0);
    assert_eq!(factored.total() as u64, n);
    assert!(factored.failures.is_empty());
    let leg_counters = reg.counter_values();
    let leg = |name: &str| {
        leg_counters.iter().find(|(c, _)| c == name).map(|(_, v)| *v).unwrap_or_default()
    };
    let (hits, misses) = (leg("dse.factored.leg_hit"), leg("dse.factored.leg_miss"));
    assert_eq!(hits + misses, 6 * n, "three leg lookups per phase per point");
    // small_spec has 4 compute + 2 memory + 1 comm distinct keys per
    // phase; racing workers may each price a key once, so the exact
    // split is scheduler-dependent, but every key must miss at least
    // once and the counters must cover every lookup.
    assert!(misses >= 14, "at least one miss per distinct leg key, got {misses}");

    reg.disable();
}
