//! Rule-grid pruning proof over the 64-variant reference grid: the
//! corner pre-screen pins most of the portfolio, every pinned ledger
//! stays entry-identical to a full screen, the streamed records are
//! byte-identical across repeated runs, and the `whatif.prune.*`
//! counters account for exactly the work the pruning skipped.
//!
//! Shares the process-global telemetry registry, so this file keeps to
//! a single `#[test]`.

use acs_dse::{DseRunner, SweepSpec};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_whatif::{ClassificationLedger, RuleGrid, WhatIfEngine};

/// The `bench_whatif` reference grid: 2 x 4 x 2 x 4 = 64 rule variants,
/// including the memory-bandwidth rule's 0 = not-enacted sentinel.
fn reference_grid_64() -> RuleGrid {
    let mut grid = RuleGrid::baseline();
    grid.tpp_threshold_2022 = vec![2400.0, 4800.0];
    grid.tpp_license = vec![1600.0, 2400.0, 3600.0, 4800.0];
    grid.pd_license = vec![3.0, 5.92];
    grid.mem_bw_license = vec![0.0, 600.0, 800.0, 1000.0];
    grid
}

#[test]
fn corner_pinning_skips_most_classifications_and_changes_nothing() {
    let reg = acs_telemetry::global();
    reg.enable();
    reg.reset();

    let grid = reference_grid_64();
    assert_eq!(grid.cardinality(), 64);
    let engine = WhatIfEngine::paper_default();

    // A small priced fleet so the fleet-side pruning and memoization
    // paths run too (48 designs at the 2400-TPP operating point).
    let spec = SweepSpec {
        systolic_dims: vec![16],
        lanes_per_core: vec![4, 8],
        l1_kib: vec![192, 1024],
        l2_mib: vec![40, 80],
        hbm_tb_s: vec![2.0, 3.2, 4.0],
        device_bw_gb_s: vec![600.0],
    };
    let runner = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
    let report = runner.run_lattice(&spec, 2400.0);
    assert!(report.failures.is_empty());
    let fleet: Vec<_> = report.designs.into_iter().map(|(_, d)| d).collect();
    let fleet_metrics: Vec<_> = fleet.iter().map(WhatIfEngine::fleet_metrics).collect();

    // --- the corner sandwich is sound: pinned ledgers == full ledgers ---
    let (strict, loose) = grid.corner_specs();
    let device_pins = ClassificationLedger::corner_pins(&strict, &loose, engine.devices());
    let fleet_pins = ClassificationLedger::corner_pins(&strict, &loose, &fleet_metrics);
    let pinned_devices = device_pins.iter().flatten().count();
    let pinned_fleet = fleet_pins.iter().flatten().count();
    assert!(
        pinned_devices * 2 > engine.devices().len(),
        "the reference grid should pin most of the 65-device portfolio, pinned {pinned_devices}"
    );
    let mut skipped_expected = 0_u64;
    for spec in grid.variants() {
        let (pinned, skipped_d) =
            ClassificationLedger::screen_pinned(&spec, engine.devices(), &device_pins);
        assert_eq!(pinned, ClassificationLedger::screen(&spec, engine.devices()));
        let (pinned_f, skipped_f) =
            ClassificationLedger::screen_pinned(&spec, &fleet_metrics, &fleet_pins);
        assert_eq!(pinned_f, ClassificationLedger::screen(&spec, &fleet_metrics));
        assert_eq!((skipped_d, skipped_f), (pinned_devices, pinned_fleet));
        skipped_expected += (skipped_d + skipped_f) as u64;
    }

    // --- counters prove the skip on the full engine run ---
    reg.reset();
    let (summary, records) = engine.run(&grid, &fleet).unwrap();
    assert_eq!(summary.variants, 64);
    let counters = reg.counter_values();
    let counter = |name: &str| {
        counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_default()
    };
    assert_eq!(counter("whatif.variants"), 64);
    assert_eq!(
        counter("whatif.prune.pinned_entries"),
        (pinned_devices + pinned_fleet) as u64
    );
    assert_eq!(counter("whatif.prune.classify_skipped"), skipped_expected);
    assert!(
        skipped_expected > 64 * 65 / 2,
        "pruning should skip the majority of the portfolio's 64-variant classifications, \
         skipped {skipped_expected}"
    );
    // The 64 variants collapse to far fewer distinct ledgers, so most
    // record blocks come from the memo.
    let device_hits = counter("whatif.prune.device_memo_hits");
    let fleet_hits = counter("whatif.prune.fleet_memo_hits");
    assert!(device_hits > 0, "some device blocks should be memo hits");
    assert!(fleet_hits > 0, "some fleet blocks should be memo hits");
    assert!(device_hits < 64 && fleet_hits < 64, "first sighting of a ledger is a miss");

    // --- pruning is invisible in the output: reruns are byte-identical ---
    let (_, again) = engine.run(&grid, &fleet).unwrap();
    let bytes = |rs: &[acs_errors::json::Value]| {
        rs.iter().map(acs_errors::json::Value::to_json).collect::<Vec<_>>()
    };
    assert_eq!(bytes(&records), bytes(&again));
}
