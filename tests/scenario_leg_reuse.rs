//! Acceptance proof for the scenario frontend's factored economics: a
//! MoE scenario sweep pays its leg pricing once, and every later sweep
//! against the same runner re-prices entirely from the persistent leg
//! tables — zero new `dse.factored.leg_miss`, a full complement of
//! `dse.factored.leg_hit` — while a dense scenario reproduces the plain
//! runner's designs digest for digest, bit-identically.
//!
//! Shares the process-global telemetry registry, so this file keeps to
//! a single `#[test]` (sibling tests in one binary would interleave
//! their counter traffic; separate test binaries run sequentially).

use acs_dse::{DseRunner, SweepSpec};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_scenarios::ScenarioRegistry;
use acs_verify::design_digest;

/// Points in [`SweepSpec::table3_fig6`].
const POINTS: u64 = 512;
/// Leg-table lookups per evaluated point: three legs (compute, memory,
/// collective) for each of the two phases (prefill, decode).
const LOOKUPS_PER_POINT: u64 = 6;

fn leg_counters(reg: &acs_telemetry::Registry) -> (u64, u64) {
    let counters = reg.counter_values();
    let get = |name: &str| {
        counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_default()
    };
    (get("dse.factored.leg_hit"), get("dse.factored.leg_miss"))
}

#[test]
fn moe_scenario_sweeps_reprice_from_persistent_leg_tables() {
    let reg = acs_telemetry::global();
    reg.enable();
    reg.reset();
    let registry = ScenarioRegistry::builtin();
    let spec = SweepSpec::table3_fig6();

    // Cold pass under the expert-parallel scenario: every point does its
    // six lookups, and the sweep lattice shares legs between sibling
    // points — but some lookups must miss to fill the tables, including
    // the expert all-to-all legs the ep=4 communication key introduces.
    let moe = registry.get("moe-mixtral-fp16-tp4-ep4").expect("builtin scenario");
    let runner = moe.runner();
    assert_eq!(runner.expert_parallel(), 4, "scenario must carry its ep degree");
    let cold = runner.run_factored(&spec, 4800.0);
    assert_eq!(cold.total() as u64, POINTS);
    assert!(cold.failures.is_empty(), "the Table-3 sweep has no infeasible points");
    let (hits_1, misses_1) = leg_counters(reg);
    assert_eq!(
        hits_1 + misses_1,
        POINTS * LOOKUPS_PER_POINT,
        "six leg lookups per point on the cold pass"
    );
    assert!(misses_1 > 0, "a cold pass must price at least one leg");
    assert!(
        misses_1 < POINTS * LOOKUPS_PER_POINT,
        "the sweep lattice should share legs even within one pass"
    );

    // Warm pass: the same sweep re-prices wholly from the runner's leg
    // tables — the factored contract the scenario axis inherits. Designs
    // must come back bit-identical to the cold pass.
    let warm = runner.run_factored(&spec, 4800.0);
    let (hits_2, misses_2) = leg_counters(reg);
    assert_eq!(misses_2, misses_1, "a warm sweep must not price any new legs");
    assert_eq!(
        hits_2 - hits_1,
        POINTS * LOOKUPS_PER_POINT,
        "the warm sweep should have re-read every leg from the tables"
    );
    assert_eq!(warm.designs, cold.designs, "warm designs must be bit-identical");

    // The dense scenario is the historical default spelled as a
    // scenario: its sweep must reproduce the plain runner's designs
    // digest for digest, so registering the frontend changed nothing.
    let dense = registry.get("dense-llama3-fp16-tp4").expect("builtin scenario");
    let via_scenario = dense.runner().run_factored(&spec, 4800.0);
    let plain = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
        .run_factored(&spec, 4800.0);
    assert_eq!(via_scenario.designs.len(), plain.designs.len());
    assert_eq!(via_scenario.failures.len(), plain.failures.len());
    for ((si, sd), (pi, pd)) in via_scenario.designs.iter().zip(&plain.designs) {
        assert_eq!(si, pi, "sweep indices must pair up");
        assert_eq!(
            design_digest(sd).expect("serializable design"),
            design_digest(pd).expect("serializable design"),
            "dense scenario drifted from the plain runner at {}",
            sd.name
        );
    }
    reg.disable();
}
