//! Cross-validation of the policy engine against the full device
//! databases: every real device must classify totally, consistently, and
//! in line with the regulation's structure.

use acs::prelude::*;
use acs_devices::{fig1_devices, frontier_2025};
use acs_policy::{classify_as_of, generation_as_of, Classification, RuleGeneration};

fn all_records() -> Vec<acs_devices::DeviceRecord> {
    let mut v: Vec<_> = GpuDatabase::curated_65().iter().cloned().collect();
    v.extend(fig1_devices());
    v.extend(frontier_2025());
    v
}

#[test]
fn every_device_classifies_under_every_generation() {
    let r22 = Acr2022::default();
    let r23 = Acr2023::default();
    for r in all_records() {
        let m = r.to_metrics();
        // Totality: no panics, and the pre-ACR generation is always free.
        let _ = r22.classify(&m);
        let _ = r23.classify(&m);
        assert_eq!(classify_as_of(&m, 2020, 1), Classification::NotApplicable, "{}", r.name);
    }
}

#[test]
fn oct2022_restriction_implies_both_thresholds() {
    let r22 = Acr2022::default();
    for r in all_records() {
        let m = r.to_metrics();
        if r22.classify(&m) == Classification::LicenseRequired {
            assert!(r.tpp >= 4800.0, "{}: TPP {}", r.name, r.tpp);
            assert!(r.device_bw_gb_s >= 600.0, "{}: BW {}", r.name, r.device_bw_gb_s);
        } else {
            assert!(
                r.tpp < 4800.0 || r.device_bw_gb_s < 600.0,
                "{} escapes with both thresholds met",
                r.name
            );
        }
    }
}

#[test]
fn oct2023_license_implies_tpp_or_density_clause() {
    let r23 = Acr2023::default();
    for r in all_records() {
        let m = r.to_metrics();
        if m.market() != MarketSegment::DataCenter {
            continue;
        }
        let pd = m.performance_density().map_or(0.0, |p| p.0);
        match r23.classify(&m) {
            Classification::LicenseRequired => {
                assert!(
                    r.tpp >= 4800.0 || (r.tpp >= 1600.0 && pd >= 5.92),
                    "{}: TPP {} PD {pd}",
                    r.name,
                    r.tpp
                );
            }
            Classification::NacEligible => {
                assert!(r.tpp >= 1600.0, "{}: NAC needs the TPP floor", r.name);
                assert!(pd >= 1.6, "{}: NAC needs a PD floor", r.name);
                assert!(pd < 5.92, "{}: PD {pd} would be licence-level", r.name);
            }
            Classification::NotApplicable => {
                let clause1 = r.tpp >= 2400.0 && pd >= 1.6;
                let clause2 = r.tpp >= 1600.0 && pd >= 3.2;
                assert!(
                    r.tpp < 4800.0 && (r.tpp < 1600.0 || pd < 5.92) && !clause1 && !clause2,
                    "{} should be regulated (TPP {} PD {pd})",
                    r.name,
                    r.tpp
                );
            }
        }
    }
}

#[test]
fn generations_tighten_for_dense_data_center_devices() {
    // For every DC device with PD >= 5.92 or TPP >= 4800, the October 2023
    // verdict is at least as strict as October 2022's.
    let r22 = Acr2022::default();
    let r23 = Acr2023::default();
    for r in all_records() {
        let m = r.to_metrics();
        if m.market() != MarketSegment::DataCenter {
            continue;
        }
        let pd = m.performance_density().map_or(0.0, |p| p.0);
        if r.tpp >= 4800.0 || pd >= 5.92 {
            assert!(
                r23.classify(&m) >= r22.classify(&m),
                "{}: 2023 should not relax dense/fast devices",
                r.name
            );
        }
    }
}

#[test]
fn timeline_agrees_with_direct_rule_calls() {
    let r22 = Acr2022::default();
    let r23 = Acr2023::default();
    for r in all_records().into_iter().take(30) {
        let m = r.to_metrics();
        assert_eq!(classify_as_of(&m, 2023, 1), r22.classify(&m), "{}", r.name);
        assert_eq!(classify_as_of(&m, 2024, 1), r23.classify(&m), "{}", r.name);
    }
    assert_eq!(generation_as_of(2024, 1), RuleGeneration::Oct2023);
}

#[test]
fn rebranding_never_changes_metrics_only_the_verdict() {
    let r23 = Acr2023::default();
    for r in all_records() {
        let m = r.to_metrics();
        let flipped = m.rebranded();
        assert_eq!(m.tpp(), flipped.tpp());
        assert_eq!(m.performance_density(), flipped.performance_density());
        // And rebranding twice is the identity on the verdict.
        assert_eq!(
            r23.classify(&flipped.rebranded()),
            r23.classify(&m),
            "{}",
            r.name
        );
    }
}

#[test]
fn diffusion_quota_is_consistent_with_device_tpp() {
    use acs_policy::DiffusionQuota;
    let quota = DiffusionQuota::tier2_country();
    let db = GpuDatabase::curated_65();
    let h100 = db.find("H100").unwrap().to_metrics();
    let l4 = db.find("L4").unwrap().to_metrics();
    // Lower-TPP devices always stretch an allocation further.
    assert!(quota.max_units(&l4) > quota.max_units(&h100));
    // And the unit count inverts the TPP ratio (within rounding).
    let ratio = quota.max_units(&l4) as f64 / quota.max_units(&h100) as f64;
    let tpp_ratio = h100.tpp().0 / l4.tpp().0;
    assert!((ratio / tpp_ratio - 1.0).abs() < 0.01, "{ratio} vs {tpp_ratio}");
}
