//! Acceptance proof for the what-if engine's fleet economics: one
//! `POST /v1/whatif` pays to price the 4096-design synthetic fleet
//! through the lattice sweep engine — leg-table traffic that scales
//! with the fleet's *signature* counts, not its point count — and every
//! later request against the same server state re-prices it entirely
//! from the runner's persistent lattice tables (probe caches, fused
//! vectors, evaluated cells): the factored leg counters do not move at
//! all.
//!
//! Shares the process-global telemetry registry, so this file keeps to
//! a single `#[test]` (sibling tests in one binary would interleave
//! their counter traffic; separate test binaries run sequentially).

use acs_serve::http::HttpRequest;
use acs_serve::{handle, AppState};

/// Points in [`acs_dse::SweepSpec::synthetic_fleet`].
const FLEET: u64 = 4096;
/// Leg-table lookups per evaluated point in the per-point factored
/// path: three legs (compute, memory, collective) for each of the two
/// phases (prefill, decode). The lattice engine's whole claim is that
/// its traffic stays far below this.
const LOOKUPS_PER_POINT: u64 = 6;

fn whatif(state: &AppState, body: &str) -> (u16, String) {
    let request =
        HttpRequest { method: "POST".into(), path: "/v1/whatif".into(), body: body.into() };
    handle(state, &request)
}

fn leg_counters(reg: &acs_telemetry::Registry) -> (u64, u64) {
    let counters = reg.counter_values();
    let get = |name: &str| {
        counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_default()
    };
    (get("dse.factored.leg_hit"), get("dse.factored.leg_miss"))
}

#[test]
fn second_whatif_request_reprices_the_fleet_from_lattice_tables() {
    let reg = acs_telemetry::global();
    reg.enable();
    reg.reset();
    let state = AppState::new(64);

    // First request prices the fleet. The lattice engine probes and
    // prices one representative point per signature instead of walking
    // every point through the leg tables, so total leg traffic must
    // come in far under the factored path's six lookups per point —
    // while still paying at least one miss to fill the tables.
    let (status, body) = whatif(&state, "{}");
    assert_eq!(status, 200, "baseline what-if failed: {body}");
    assert!(body.contains("\"fleet_designs\":4096"), "fleet missing from summary: {body}");
    let (hits_1, misses_1) = leg_counters(reg);
    assert!(misses_1 > 0, "a cold run must price at least one leg");
    assert!(
        hits_1 + misses_1 < FLEET * LOOKUPS_PER_POINT / 8,
        "lattice leg traffic must scale with signatures, not points \
         (saw {} lookups for {} points)",
        hits_1 + misses_1,
        FLEET,
    );

    // A different grid misses the response cache, so the handler runs
    // the fleet sweep again — and finds every probe, fused vector, and
    // evaluated cell already in the runner's persistent lattice tables.
    // This is the interactive what-if contract: rule iteration costs
    // classification, not simulation — the leg tables are not even
    // consulted.
    let (status, body) =
        whatif(&state, "{\"grid\":{\"tpp_license\":[1600,2400],\"mem_bw_license\":[0,800]}}");
    assert_eq!(status, 200, "grid what-if failed: {body}");
    let (hits_2, misses_2) = leg_counters(reg);
    assert_eq!(misses_2, misses_1, "a warm fleet sweep must not price any new legs");
    assert_eq!(hits_2, hits_1, "a warm fleet sweep must re-read cells, not legs");

    // And an identical repeat never reaches the runner at all: the
    // response cache replays the stream, leg counters stay frozen.
    let (status, _) = whatif(&state, "{}");
    assert_eq!(status, 200);
    assert_eq!(leg_counters(reg), (hits_2, misses_2), "cached replay touched the runner");
    reg.disable();
}
