//! Consolidated paper-vs-measured anchors: the headline numbers of every
//! section, asserted as bands around the published values. EXPERIMENTS.md
//! records the exact measured figures.

use acs::prelude::*;
use acs_policy::Classification;

fn gpt3() -> ModelConfig {
    ModelConfig::gpt3_175b()
}

fn llama() -> ModelConfig {
    ModelConfig::llama3_8b()
}

fn work() -> WorkloadConfig {
    WorkloadConfig::paper_default()
}

/// §2.2 / Figures 1–2: every named device classification the paper calls
/// out, end-to-end through the device database.
#[test]
fn section_2_named_device_classifications() {
    let db = GpuDatabase::curated_65();
    let r22 = Acr2022::default();
    let r23 = Acr2023::default();
    let class = |rule_is_22: bool, name: &str| {
        let m = db.find(name).unwrap().to_metrics();
        if rule_is_22 {
            r22.classify(&m)
        } else {
            r23.classify(&m)
        }
    };
    // October 2022: A800/H800 escape by the bandwidth cut.
    assert_eq!(class(true, "A100 80GB"), Classification::LicenseRequired);
    assert_eq!(class(true, "A800"), Classification::NotApplicable);
    assert_eq!(class(true, "H800"), Classification::NotApplicable);
    // October 2023 catches them via TPP/PD.
    assert_eq!(class(false, "A800"), Classification::LicenseRequired);
    assert_eq!(class(false, "H800"), Classification::LicenseRequired);
    // The RTX 4090 needs NAC; the 4090D was sized under 4800 to escape.
    assert_eq!(class(false, "RTX 4090"), Classification::NacEligible);
    assert_eq!(class(false, "RTX 4090D"), Classification::NotApplicable);
}

/// §4.1 (Figure 5): scaling sensitivities of the two October-2022 knobs.
#[test]
fn section_4_1_tpp_vs_bandwidth_scaling() {
    let work = work();
    let sim_for = |cores: u32, bw: f64| {
        let cfg = DeviceConfig::a100_like()
            .to_builder()
            .core_count(cores)
            .device_bandwidth_gb_s(bw)
            .build()
            .unwrap();
        Simulator::new(SystemConfig::quad(cfg).unwrap())
    };
    // TPP 4000 -> 5000 cuts TTFT by ~16% (paper 16.2%).
    let ttft_4000 = sim_for(86, 500.0).ttft_s(&gpt3(), &work);
    let ttft_5000 = sim_for(108, 500.0).ttft_s(&gpt3(), &work);
    let gain = 1.0 - ttft_5000 / ttft_4000;
    assert!((0.10..=0.25).contains(&gain), "gain = {gain}");
    // Device BW 600 -> 1000 moves TBT by well under 1% (paper 0.27%).
    let tbt_600 = sim_for(103, 600.0).tbt_s(&gpt3(), &work);
    let tbt_1000 = sim_for(103, 1000.0).tbt_s(&gpt3(), &work);
    let tbt_gain = 1.0 - tbt_1000 / tbt_600;
    assert!((0.0..0.01).contains(&tbt_gain), "tbt gain = {tbt_gain}");
}

/// §4.2 (Figure 6): October-2022-compliant designs beat the A100 on
/// decoding by double digits while roughly holding prefill.
#[test]
fn section_4_2_oct2022_optimised_designs() {
    for (model, tbt_band) in [(gpt3(), 0.15..0.40), (llama(), 0.05..0.30)] {
        let report = optimize_oct2022(&model, &work());
        let tbt_gain = report.best_tbt_improvement();
        assert!(tbt_band.contains(&tbt_gain), "{}: TBT gain {tbt_gain}", model.name());
        let ttft_gain = report.best_ttft_improvement();
        assert!(ttft_gain > -0.05, "{}: TTFT gain {ttft_gain}", model.name());
        // The decode optimum maxes out memory bandwidth (§4.2).
        assert_eq!(report.best_tbt().unwrap().params.hbm_tb_s, 3.2);
    }
}

/// §4.3 (Figure 7): the 2023 rule kills the 4800 tier, hobbles prefill at
/// 2400, but leaves decoding improvable.
#[test]
fn section_4_3_oct2023_tiers() {
    let report_4800 = optimize_oct2023(&gpt3(), &work(), 4800.0);
    assert!(report_4800.best_ttft().is_none(), "all 4800-TPP designs invalid");

    let report_2400 = optimize_oct2023(&gpt3(), &work(), 2400.0);
    let best = report_2400.best_ttft().unwrap();
    assert!(
        best.ttft_s > report_2400.baseline.ttft_s * 1.4,
        "compliant 2400-TPP prefill is much slower than the A100"
    );
    assert!(report_2400.best_tbt_improvement() > 0.1, "decoding still improves");
}

/// §4.4 (Table 4 / Figure 8): the PD floor wastes silicon — the compliant
/// optimum costs meaningfully more per good die at equal performance.
#[test]
fn section_4_4_compliance_costs_silicon() {
    let report = optimize_oct2023(&gpt3(), &work(), 2400.0);
    let compliant = report.best_ttft().unwrap();
    let non = report
        .designs
        .iter()
        .filter(|d| d.within_reticle && !d.pd_unregulated_2023)
        .min_by(|a, b| a.ttft_s.total_cmp(&b.ttft_s))
        .unwrap();
    let o = ComplianceOverhead::between(compliant, non);
    assert!(o.good_die_cost_ratio > 1.2, "good-die premium = {}", o.good_die_cost_ratio);
    assert!((0.95..1.05).contains(&o.ttft_ratio), "performance parity");
    // Only a narrow single-die area window exists at this tier
    // (§4.4: reticle vs PD floor leaves ~110 mm²).
    let areas: Vec<f64> = report
        .designs
        .iter()
        .filter(|d| d.valid_2023())
        .map(|d| d.die_area_mm2)
        .collect();
    let min = areas.iter().copied().fold(f64::INFINITY, f64::min);
    let max = areas.iter().copied().fold(0.0, f64::max);
    assert!(max <= 860.0);
    assert!(max - min < 200.0, "window = {}", max - min);
}

/// §5.2 (Figures 9–10): the classification-consistency counts.
#[test]
fn section_5_2_classification_counts() {
    let db = GpuDatabase::curated_65();
    let marketing = marketing_consistency(&db, &Acr2023::default());
    assert_eq!(marketing.false_dc.len(), 4);
    assert_eq!(marketing.false_ndc.len(), 7);
    let arch = architectural_consistency(&db, &ArchClassifier::paper());
    assert_eq!(arch.false_dc.len(), 2);
    assert!(arch.false_ndc.is_empty());
}

/// §5.3 (Figures 11–12): memory bandwidth is the decode indicator; lanes
/// and L1 are prefill indicators; device bandwidth is neither.
#[test]
fn section_5_3_indicator_strengths() {
    let designs: Vec<EvaluatedDesign> = DseRunner::new(gpt3(), work())
        .run(&SweepSpec::table3_fig7(), 4800.0)
        .into_iter()
        .filter(|d| d.within_reticle)
        .collect();
    let narrowing = |metric, col: FixedParam| {
        indicator_report(&designs, metric, &[col])[1].narrowing
    };
    let bw_tbt = narrowing(LatencyMetric::Tbt, FixedParam::HbmTbS(2.8));
    assert!(bw_tbt > 10.0, "memory BW narrows TBT {bw_tbt}x (paper 20.6x)");
    let lane_ttft = narrowing(LatencyMetric::Ttft, FixedParam::Lanes(1));
    assert!(lane_ttft > 3.0, "lane count narrows TTFT {lane_ttft}x (paper 5x)");
    let dev_ttft = narrowing(LatencyMetric::Ttft, FixedParam::DeviceBwGbS(500.0));
    assert!(dev_ttft < 2.0, "device BW is a weak indicator ({dev_ttft}x)");
    assert!(bw_tbt > dev_ttft);
}

/// §5.3 (Figure 12): restricting L1 or memory bandwidth throttles the
/// matching phase relative to the A100.
#[test]
fn section_5_3_restriction_medians() {
    let baseline = A100Baseline::simulate(&gpt3(), &work());
    let designs: Vec<EvaluatedDesign> = DseRunner::new(gpt3(), work())
        .run(&SweepSpec::table5(), 4800.0)
        .into_iter()
        .filter(|d| d.within_reticle)
        .collect();
    let l1 = indicator_report(&designs, LatencyMetric::Ttft, &[FixedParam::L1Kib(32)]);
    let slow = l1[1].distribution.median / baseline.ttft_s - 1.0;
    assert!((0.3..1.2).contains(&slow), "32KB L1 median TTFT {slow:+.2} (paper +0.587)");
    let bw = indicator_report(&designs, LatencyMetric::Tbt, &[FixedParam::HbmTbS(0.8)]);
    let slow_tbt = bw[1].distribution.median / baseline.tbt_s - 1.0;
    assert!((0.6..2.0).contains(&slow_tbt), "0.8TB/s median TBT {slow_tbt:+.2} (paper +1.10)");
}
