//! Property-style tests over the core substrates.
//!
//! The offline build has no property-testing crate, so these run the same
//! invariants over deterministic pseudo-random samples drawn from the
//! workspace's SplitMix64 generator: every run checks the same cases, and
//! a failure message carries the case index for reproduction.

use acs::prelude::*;
use acs_hw::tpp::{cores_for_tpp, max_macs_for_tpp, tpp_of};
use acs_hw::HwError;
use acs_llm::rng::SplitMix64;
use acs_llm::{graph::LayerGraph, InferencePhase};
use acs_sim::SimParams;

fn pick<T: Copy>(rng: &mut SplitMix64, options: &[T]) -> T {
    options[(rng.next_u64() % options.len() as u64) as usize]
}

fn uni(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn uni_u32(rng: &mut SplitMix64, lo: u32, hi: u32) -> u32 {
    lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32
}

fn gen_device(rng: &mut SplitMix64) -> DeviceConfig {
    DeviceConfig::builder()
        .core_count(uni_u32(rng, 8, 511))
        .lanes_per_core(uni_u32(rng, 1, 8))
        .systolic(SystolicDims::square(pick(rng, &[4, 8, 16, 32])))
        .l1_kib_per_core(pick(rng, &[32, 64, 128, 192, 256, 512, 1024]))
        .l2_mib(pick(rng, &[8, 16, 32, 40, 48, 64, 80]))
        .hbm_bandwidth_tb_s(uni(rng, 0.4, 4.0))
        .device_bandwidth_gb_s(uni(rng, 100.0, 1200.0))
        .build()
        .expect("generated configs are valid")
}

/// Eq. 1 inverse: the solved core count sits strictly under the ceiling,
/// and one more core meets or exceeds it.
#[test]
fn cores_for_tpp_is_tight() {
    let mut rng = SplitMix64::new(101);
    for case in 0..64 {
        let tpp_limit = uni(&mut rng, 200.0, 30_000.0);
        let dims = SystolicDims::square(pick(&mut rng, &[4, 8, 16, 32]));
        let lanes = uni_u32(&mut rng, 1, 8);
        if let Ok(cores) = cores_for_tpp(tpp_limit, 1.41, DataType::Fp16, dims, lanes) {
            let at = tpp_of(cores, lanes, dims, 1.41, DataType::Fp16);
            let above = tpp_of(cores + 1, lanes, dims, 1.41, DataType::Fp16);
            assert!(at.0 < tpp_limit, "case {case}");
            assert!(above.0 >= tpp_limit - 1e-6, "case {case}");
        }
    }
}

/// `max_macs_for_tpp` is monotone in the budget.
#[test]
fn mac_budget_is_monotone() {
    let mut rng = SplitMix64::new(102);
    for case in 0..64 {
        let a = uni(&mut rng, 0.0, 20_000.0);
        let b = uni(&mut rng, 0.0, 20_000.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            max_macs_for_tpp(lo, 1.41, DataType::Fp16)
                <= max_macs_for_tpp(hi, 1.41, DataType::Fp16),
            "case {case}"
        );
    }
}

/// Area model: total is the sum of parts, positive, and monotone in L2.
#[test]
fn area_model_is_sane() {
    let mut rng = SplitMix64::new(103);
    let model = AreaModel::n7();
    for case in 0..64 {
        let device = gen_device(&mut rng);
        let b = model.die_area(&device);
        assert!(b.total_mm2() > 0.0, "case {case}");
        let sum = b.systolic + b.vector + b.l1 + b.l2 + b.hbm_phy + b.device_phy
            + b.control + b.fixed;
        assert!((sum - b.total_mm2()).abs() < 1e-9, "case {case}");
        let bigger_l2 = device.to_builder().l2_mib(device.l2_mib() + 16).build().unwrap();
        assert!(model.die_area(&bigger_l2).total_mm2() > b.total_mm2(), "case {case}");
    }
}

/// Cost model invariants: yield in (0, 1], good-die cost dominates raw
/// cost, and cost grows with area.
#[test]
fn cost_model_is_sane() {
    let mut rng = SplitMix64::new(104);
    let m = CostModel::n7();
    for case in 0..64 {
        let area = uni(&mut rng, 50.0, 860.0);
        let y = m.die_yield(area);
        assert!(y > 0.0 && y <= 1.0, "case {case}: yield = {y}");
        assert!(m.good_die_cost_usd(area) >= m.die_cost_usd(area), "case {case}");
        assert!(m.die_cost_usd(area + 50.0) > m.die_cost_usd(area), "case {case}");
    }
}

/// The simulator returns positive, finite latencies for any valid device,
/// and prefill always dwarfs a single decode step. The `try_` variants
/// agree with the unchecked paths on healthy inputs.
#[test]
fn simulator_latencies_are_well_formed() {
    let mut rng = SplitMix64::new(105);
    let w = WorkloadConfig::paper_default();
    for case in 0..24 {
        let sim = Simulator::new(SystemConfig::quad(gen_device(&mut rng)).unwrap());
        for model in [ModelConfig::gpt3_175b(), ModelConfig::llama3_8b()] {
            let ttft = sim.ttft_s(&model, &w);
            let tbt = sim.tbt_s(&model, &w);
            assert!(ttft.is_finite() && ttft > 0.0, "case {case}");
            assert!(tbt.is_finite() && tbt > 0.0, "case {case}");
            assert!(ttft > tbt, "case {case} {}: {ttft} vs {tbt}", model.name());
            assert_eq!(sim.try_ttft_s(&model, &w).unwrap(), ttft, "case {case}");
            assert_eq!(sim.try_tbt_s(&model, &w).unwrap(), tbt, "case {case}");
        }
    }
}

/// More memory bandwidth never hurts either phase.
#[test]
fn memory_bandwidth_is_weakly_beneficial() {
    let mut rng = SplitMix64::new(106);
    let w = WorkloadConfig::paper_default();
    let m = ModelConfig::gpt3_175b();
    for case in 0..24 {
        let device = gen_device(&mut rng);
        let fast = device
            .to_builder()
            .hbm_bandwidth_tb_s(device.hbm().bandwidth_tb_s() * 2.0)
            .build()
            .unwrap();
        let sim_a = Simulator::new(SystemConfig::quad(device).unwrap());
        let sim_b = Simulator::new(SystemConfig::quad(fast).unwrap());
        assert!(sim_b.tbt_s(&m, &w) <= sim_a.tbt_s(&m, &w) * 1.0001, "case {case}");
        assert!(sim_b.ttft_s(&m, &w) <= sim_a.ttft_s(&m, &w) * 1.0001, "case {case}");
    }
}

/// Classification is total and ordered: growing die area (lowering PD)
/// never makes a data-center device MORE restricted under October 2023.
#[test]
fn oct2023_is_monotone_in_area() {
    let mut rng = SplitMix64::new(107);
    let rule = Acr2023::default();
    for case in 0..64 {
        let tpp = uni(&mut rng, 100.0, 20_000.0);
        let area = uni(&mut rng, 50.0, 2000.0);
        let extra = uni(&mut rng, 1.0, 2000.0);
        let small = acs_policy::DeviceMetrics::new(
            "s", tpp, 600.0, area, true, MarketSegment::DataCenter);
        let large = acs_policy::DeviceMetrics::new(
            "l", tpp, 600.0, area + extra, true, MarketSegment::DataCenter);
        assert!(rule.classify(&large) <= rule.classify(&small), "case {case}");
    }
}

/// October 2022 is monotone in both TPP and device bandwidth.
#[test]
fn oct2022_is_monotone() {
    let mut rng = SplitMix64::new(108);
    let rule = Acr2022::default();
    for case in 0..64 {
        let tpp = uni(&mut rng, 0.0, 20_000.0);
        let bw = uni(&mut rng, 0.0, 1200.0);
        let dt = uni(&mut rng, 0.0, 5000.0);
        let db = uni(&mut rng, 0.0, 500.0);
        let lo = acs_policy::DeviceMetrics::new(
            "lo", tpp, bw, 800.0, true, MarketSegment::DataCenter);
        let hi = acs_policy::DeviceMetrics::new(
            "hi", tpp + dt, bw + db, 800.0, true, MarketSegment::DataCenter);
        assert!(rule.classify(&lo) <= rule.classify(&hi), "case {case}");
    }
}

/// Layer graphs: per-device matmul FLOPs shrink as tensor parallelism
/// grows, close to proportionally.
#[test]
fn layer_graph_scales_with_tp() {
    let mut rng = SplitMix64::new(109);
    let m = ModelConfig::gpt3_175b();
    for case in 0..64 {
        let batch = 1 + rng.next_u64() % 63;
        let input = 64 + rng.next_u64() % 4032;
        let w = WorkloadConfig::new(batch, input, 16);
        let f1 = LayerGraph::build(&m, &w, InferencePhase::Prefill, 1).matmul_flops();
        let f4 = LayerGraph::build(&m, &w, InferencePhase::Prefill, 4).matmul_flops();
        assert!(f4 < f1, "case {case}");
        assert!(f1 / f4 > 3.0 && f1 / f4 < 5.0, "case {case}: ratio {}", f1 / f4);
    }
}

/// Distribution summary invariants.
#[test]
fn distribution_invariants() {
    let mut rng = SplitMix64::new(110);
    for case in 0..64 {
        let n = 1 + (rng.next_u64() % 199) as usize;
        let mut xs: Vec<f64> = (0..n).map(|_| uni(&mut rng, 0.0, 1e6)).collect();
        let d = Distribution::from_samples(&xs).unwrap();
        xs.sort_by(f64::total_cmp);
        assert_eq!(d.min, xs[0], "case {case}");
        assert_eq!(d.max, xs[xs.len() - 1], "case {case}");
        assert!(d.min <= d.q1 && d.q1 <= d.median, "case {case}");
        assert!(d.median <= d.q3 && d.q3 <= d.max, "case {case}");
        assert!(d.mean >= d.min && d.mean <= d.max, "case {case}");
        assert!(d.iqr() <= d.range(), "case {case}");
    }
}

/// Idealised parameters (full bandwidth, no overheads) essentially
/// dominate the calibrated ones. Wave quantisation makes the compute term
/// non-monotone in tile size, so a small tolerance is allowed.
#[test]
fn ideal_params_dominate() {
    let mut rng = SplitMix64::new(111);
    let w = WorkloadConfig::paper_default();
    let m = ModelConfig::llama3_8b();
    for case in 0..24 {
        let system = SystemConfig::quad(gen_device(&mut rng)).unwrap();
        let cal = Simulator::with_params(system.clone(), SimParams::calibrated());
        let ideal = Simulator::with_params(system, SimParams::ideal());
        assert!(ideal.ttft_s(&m, &w) <= cal.ttft_s(&m, &w) * 1.2, "case {case}");
        assert!(ideal.tbt_s(&m, &w) <= cal.tbt_s(&m, &w) * 1.2, "case {case}");
    }
}

/// `DeviceConfig::build` rejects each invalid-input class with the
/// correct `HwError` variant naming the offending field.
#[test]
fn builder_rejects_every_invalid_input_class() {
    let zero_u32: &[(&str, fn() -> Result<DeviceConfig, HwError>)] = &[
        ("core_count", || DeviceConfig::builder().core_count(0).build()),
        ("lanes_per_core", || DeviceConfig::builder().lanes_per_core(0).build()),
        ("systolic.x", || DeviceConfig::builder().systolic(SystolicDims { x: 0, y: 16 }).build()),
        ("systolic.y", || DeviceConfig::builder().systolic(SystolicDims { x: 16, y: 0 }).build()),
        ("l1_kib_per_core", || DeviceConfig::builder().l1_kib_per_core(0).build()),
        ("l2_mib", || DeviceConfig::builder().l2_mib(0).build()),
    ];
    for (field, make) in zero_u32 {
        match make() {
            Err(HwError::InvalidConfig { field: f, .. }) => assert_eq!(&f, field),
            other => panic!("{field}: expected InvalidConfig, got {other:?}"),
        }
    }
    // Non-positive and non-finite floats, per field.
    for bad in [0.0, -1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let float_cases: &[(&str, Result<DeviceConfig, HwError>)] = &[
            ("frequency_ghz", DeviceConfig::builder().frequency_ghz(bad).build()),
            ("hbm.bandwidth_gb_s", DeviceConfig::builder().hbm_bandwidth_tb_s(bad).build()),
            ("phy.gb_s_per_phy", DeviceConfig::builder().device_bandwidth_gb_s(bad).build()),
        ];
        for (field, outcome) in float_cases {
            match outcome {
                Err(HwError::InvalidConfig { field: f, reason }) => {
                    assert_eq!(f, field, "{bad}");
                    assert!(reason.contains("positive"), "{field}: {reason}");
                }
                other => panic!("{field} = {bad}: expected InvalidConfig, got {other:?}"),
            }
        }
    }
}

/// Valid configurations round-trip through the workspace JSON codec.
#[test]
fn device_config_json_round_trip() {
    let mut rng = SplitMix64::new(112);
    for case in 0..64 {
        let device = gen_device(&mut rng);
        let json = device.to_json_string();
        let back = DeviceConfig::from_json_str(&json).unwrap();
        assert_eq!(device, back, "case {case}");
    }
}
