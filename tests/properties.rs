//! Property-based tests over the core substrates.

use acs::prelude::*;
use acs_hw::tpp::{cores_for_tpp, max_macs_for_tpp, tpp_of};
use acs_llm::{graph::LayerGraph, InferencePhase};
use acs_sim::SimParams;
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceConfig> {
    (
        8u32..512,                                // cores
        1u32..=8,                                 // lanes
        prop::sample::select(vec![4u32, 8, 16, 32]), // systolic dim
        prop::sample::select(vec![32u32, 64, 128, 192, 256, 512, 1024]), // l1 KiB
        prop::sample::select(vec![8u32, 16, 32, 40, 48, 64, 80]),        // l2 MiB
        0.4f64..4.0,                              // hbm TB/s
        100.0f64..1200.0,                         // device BW GB/s
    )
        .prop_map(|(cores, lanes, dim, l1, l2, hbm, bw)| {
            DeviceConfig::builder()
                .core_count(cores)
                .lanes_per_core(lanes)
                .systolic(SystolicDims::square(dim))
                .l1_kib_per_core(l1)
                .l2_mib(l2)
                .hbm_bandwidth_tb_s(hbm)
                .device_bandwidth_gb_s(bw)
                .build()
                .expect("generated configs are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 1 inverse: the solved core count sits strictly under the
    /// ceiling, and one more core meets or exceeds it.
    #[test]
    fn cores_for_tpp_is_tight(
        tpp_limit in 200.0f64..30_000.0,
        dim in prop::sample::select(vec![4u32, 8, 16, 32]),
        lanes in 1u32..=8,
    ) {
        let dims = SystolicDims::square(dim);
        if let Ok(cores) = cores_for_tpp(tpp_limit, 1.41, DataType::Fp16, dims, lanes) {
            let at = tpp_of(cores, lanes, dims, 1.41, DataType::Fp16);
            let above = tpp_of(cores + 1, lanes, dims, 1.41, DataType::Fp16);
            prop_assert!(at.0 < tpp_limit);
            prop_assert!(above.0 >= tpp_limit - 1e-6);
        }
    }

    /// `max_macs_for_tpp` is monotone in the budget.
    #[test]
    fn mac_budget_is_monotone(a in 0.0f64..20_000.0, b in 0.0f64..20_000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            max_macs_for_tpp(lo, 1.41, DataType::Fp16)
                <= max_macs_for_tpp(hi, 1.41, DataType::Fp16)
        );
    }

    /// Area model: total is the sum of parts, positive, and monotone in L2.
    #[test]
    fn area_model_is_sane(device in arb_device()) {
        let model = AreaModel::n7();
        let b = model.die_area(&device);
        prop_assert!(b.total_mm2() > 0.0);
        let sum = b.systolic + b.vector + b.l1 + b.l2 + b.hbm_phy + b.device_phy
            + b.control + b.fixed;
        prop_assert!((sum - b.total_mm2()).abs() < 1e-9);
        let bigger_l2 = device.to_builder().l2_mib(device.l2_mib() + 16).build().unwrap();
        prop_assert!(model.die_area(&bigger_l2).total_mm2() > b.total_mm2());
    }

    /// Cost model invariants: yield in (0, 1], good-die cost dominates raw
    /// cost, and cost grows with area.
    #[test]
    fn cost_model_is_sane(area in 50.0f64..860.0) {
        let m = CostModel::n7();
        let y = m.die_yield(area);
        prop_assert!(y > 0.0 && y <= 1.0);
        prop_assert!(m.good_die_cost_usd(area) >= m.die_cost_usd(area));
        prop_assert!(m.die_cost_usd(area + 50.0) > m.die_cost_usd(area));
    }

    /// The simulator returns positive, finite latencies for any valid
    /// device, and prefill always dwarfs a single decode step.
    #[test]
    fn simulator_latencies_are_well_formed(device in arb_device()) {
        let sim = Simulator::new(SystemConfig::quad(device).unwrap());
        let w = WorkloadConfig::paper_default();
        for model in [ModelConfig::gpt3_175b(), ModelConfig::llama3_8b()] {
            let ttft = sim.ttft_s(&model, &w);
            let tbt = sim.tbt_s(&model, &w);
            prop_assert!(ttft.is_finite() && ttft > 0.0);
            prop_assert!(tbt.is_finite() && tbt > 0.0);
            prop_assert!(ttft > tbt, "{}: {} vs {}", model.name(), ttft, tbt);
        }
    }

    /// More memory bandwidth never hurts either phase.
    #[test]
    fn memory_bandwidth_is_weakly_beneficial(device in arb_device()) {
        let fast = device
            .to_builder()
            .hbm_bandwidth_tb_s(device.hbm().bandwidth_tb_s() * 2.0)
            .build()
            .unwrap();
        let w = WorkloadConfig::paper_default();
        let sim_a = Simulator::new(SystemConfig::quad(device).unwrap());
        let sim_b = Simulator::new(SystemConfig::quad(fast).unwrap());
        let m = ModelConfig::gpt3_175b();
        prop_assert!(sim_b.tbt_s(&m, &w) <= sim_a.tbt_s(&m, &w) * 1.0001);
        prop_assert!(sim_b.ttft_s(&m, &w) <= sim_a.ttft_s(&m, &w) * 1.0001);
    }

    /// Classification is total and ordered: growing die area (lowering
    /// PD) never makes a data-center device MORE restricted under the
    /// October 2023 rule.
    #[test]
    fn oct2023_is_monotone_in_area(
        tpp in 100.0f64..20_000.0,
        area in 50.0f64..2000.0,
        extra in 1.0f64..2000.0,
    ) {
        let rule = Acr2023::default();
        let small = acs_policy::DeviceMetrics::new(
            "s", tpp, 600.0, area, true, MarketSegment::DataCenter);
        let large = acs_policy::DeviceMetrics::new(
            "l", tpp, 600.0, area + extra, true, MarketSegment::DataCenter);
        prop_assert!(rule.classify(&large) <= rule.classify(&small));
    }

    /// October 2022 is monotone in both TPP and device bandwidth.
    #[test]
    fn oct2022_is_monotone(
        tpp in 0.0f64..20_000.0,
        bw in 0.0f64..1200.0,
        dt in 0.0f64..5000.0,
        db in 0.0f64..500.0,
    ) {
        let rule = Acr2022::default();
        let lo = acs_policy::DeviceMetrics::new(
            "lo", tpp, bw, 800.0, true, MarketSegment::DataCenter);
        let hi = acs_policy::DeviceMetrics::new(
            "hi", tpp + dt, bw + db, 800.0, true, MarketSegment::DataCenter);
        prop_assert!(rule.classify(&lo) <= rule.classify(&hi));
    }

    /// Layer graphs: per-device matmul FLOPs shrink (weakly) as tensor
    /// parallelism grows, and all-reduce payloads scale with tokens.
    #[test]
    fn layer_graph_scales_with_tp(
        batch in 1u64..64,
        input in 64u64..4096,
    ) {
        let w = WorkloadConfig::new(batch, input, 16);
        let m = ModelConfig::gpt3_175b();
        let f1 = LayerGraph::build(&m, &w, InferencePhase::Prefill, 1).matmul_flops();
        let f4 = LayerGraph::build(&m, &w, InferencePhase::Prefill, 4).matmul_flops();
        prop_assert!(f4 < f1);
        prop_assert!(f1 / f4 > 3.0 && f1 / f4 < 5.0);
    }

    /// Distribution summary invariants.
    #[test]
    fn distribution_invariants(mut xs in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let d = Distribution::from_samples(&xs).unwrap();
        xs.sort_by(f64::total_cmp);
        prop_assert_eq!(d.min, xs[0]);
        prop_assert_eq!(d.max, xs[xs.len() - 1]);
        prop_assert!(d.min <= d.q1 && d.q1 <= d.median);
        prop_assert!(d.median <= d.q3 && d.q3 <= d.max);
        prop_assert!(d.mean >= d.min && d.mean <= d.max);
        prop_assert!(d.iqr() <= d.range());
    }

    /// Idealised parameters (full bandwidth, no overheads) essentially
    /// dominate the calibrated ones. Wave quantisation makes the compute
    /// term non-monotone in tile size, so a small tolerance is allowed.
    #[test]
    fn ideal_params_dominate(device in arb_device()) {
        let w = WorkloadConfig::paper_default();
        let m = ModelConfig::llama3_8b();
        let system = SystemConfig::quad(device).unwrap();
        let cal = Simulator::with_params(system.clone(), SimParams::calibrated());
        let ideal = Simulator::with_params(system, SimParams::ideal());
        prop_assert!(ideal.ttft_s(&m, &w) <= cal.ttft_s(&m, &w) * 1.2);
        prop_assert!(ideal.tbt_s(&m, &w) <= cal.tbt_s(&m, &w) * 1.2);
    }
}
