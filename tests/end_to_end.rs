//! Cross-crate integration: sweep → simulate → price → classify →
//! optimise, exercising every substrate in one pipeline.

use acs::prelude::*;
use acs_policy::Classification;

#[test]
fn full_pipeline_from_sweep_to_classification() {
    // Build a small October-2022-style sweep.
    let spec = SweepSpec {
        systolic_dims: vec![16, 32],
        lanes_per_core: vec![2, 4],
        l1_kib: vec![192, 512],
        l2_mib: vec![40],
        hbm_tb_s: vec![2.0, 3.2],
        device_bw_gb_s: vec![600.0],
    };
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();
    let designs = DseRunner::new(model, work).run(&spec, 4800.0);
    assert_eq!(designs.len(), 16);

    for d in &designs {
        // Every design must be strictly TPP-compliant by construction.
        assert!(d.tpp < 4800.0, "{}", d.name);
        // Latencies and costs are positive and finite.
        assert!(d.ttft_s.is_finite() && d.ttft_s > 0.0);
        assert!(d.tbt_s.is_finite() && d.tbt_s > 0.0);
        assert!(d.die_cost_usd.is_finite() && d.die_cost_usd > 0.0);
        // Decode is never faster than one full weight stream allows:
        // per-device weights / peak bandwidth is a hard floor.
        let weight_bytes = 2.0 * 12.0 * 12288.0_f64.powi(2) / 4.0;
        let floor = weight_bytes / (d.params.hbm_tb_s * 1e12);
        assert!(d.tbt_s > floor, "{}: tbt {} < floor {}", d.name, d.tbt_s, floor);

        // Classify the synthetic design exactly like a real device.
        let metrics = DeviceMetrics::new(
            d.name.clone(),
            d.tpp,
            d.params.device_bw_gb_s,
            d.die_area_mm2,
            true,
            MarketSegment::DataCenter,
        );
        // All designs are under both October 2022 thresholds…
        assert_eq!(Acr2022::default().classify(&metrics), Classification::NotApplicable);
        // …and the Oct-2023 verdict must agree with the DSE's own flag.
        let unregulated =
            Acr2023::default().classify(&metrics) == Classification::NotApplicable;
        assert_eq!(unregulated, d.pd_unregulated_2023, "{}", d.name);
    }
}

#[test]
fn optimizer_never_picks_invalid_or_dominated_designs() {
    let model = ModelConfig::llama3_8b();
    let work = WorkloadConfig::paper_default();
    let report = optimize_oct2022(&model, &work);
    let best_ttft = report.best_ttft().unwrap();
    let best_tbt = report.best_tbt().unwrap();
    assert!(best_ttft.within_reticle);
    assert!(best_tbt.within_reticle);
    for d in report.designs.iter().filter(|d| d.within_reticle) {
        assert!(d.ttft_s >= best_ttft.ttft_s);
        assert!(d.tbt_s >= best_tbt.tbt_s);
    }
}

#[test]
fn pareto_front_of_dse_contains_both_optima() {
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();
    let report = optimize_oct2022(&model, &work);
    let valid: Vec<_> =
        report.designs.iter().filter(|d| d.within_reticle).cloned().collect();
    let front = pareto_front(&valid, |d| d.ttft_s, |d| d.tbt_s);
    assert!(!front.is_empty());
    let min_ttft = valid.iter().map(|d| d.ttft_s).fold(f64::INFINITY, f64::min);
    let min_tbt = valid.iter().map(|d| d.tbt_s).fold(f64::INFINITY, f64::min);
    assert!(front.iter().any(|&i| valid[i].ttft_s == min_ttft));
    assert!(front.iter().any(|&i| valid[i].tbt_s == min_tbt));
    // Nothing on the front is dominated by anything valid.
    for &i in &front {
        for d in &valid {
            let dominates = d.ttft_s <= valid[i].ttft_s
                && d.tbt_s <= valid[i].tbt_s
                && (d.ttft_s < valid[i].ttft_s || d.tbt_s < valid[i].tbt_s);
            assert!(!dominates);
        }
    }
}

#[test]
fn indicator_columns_partition_consistently() {
    let work = WorkloadConfig::paper_default();
    let designs = DseRunner::new(ModelConfig::gpt3_175b(), work)
        .run(&SweepSpec::table3_fig6(), 4800.0);
    // The four HBM columns partition the space.
    let mut total = 0;
    for bw in [2.0, 2.4, 2.8, 3.2] {
        let cols = indicator_report(&designs, LatencyMetric::Tbt, &[FixedParam::HbmTbS(bw)]);
        total += cols[1].distribution.count;
        assert!(cols[1].narrowing >= 1.0, "fixing a parameter can only narrow");
    }
    assert_eq!(total, designs.len());
}

#[test]
fn facade_prelude_reexports_cohere() {
    // The facade's prelude must expose a workable end-to-end surface.
    let device = DeviceConfig::a100_like();
    let area = AreaModel::n7().die_area(&device).total_mm2();
    let metrics = DeviceMetrics::from_config(&device, area, MarketSegment::DataCenter);
    let class = Acr2023::default().classify(&metrics);
    assert_eq!(class, acs_policy::Classification::LicenseRequired);
    let db = GpuDatabase::curated_65();
    assert_eq!(db.len(), 65);
    let _ = CostModel::n7().die_cost_usd(area);
}
