//! Golden equivalence between the factored sweep evaluator and the
//! planned pipeline it memoises, expressed as differential cases.
//!
//! The factored evaluator replaces per-point pricing with lookups into
//! dependency-keyed leg tables plus a `max()` combine. That is a pure
//! caching change: it must not move a single bit of any result. The
//! comparison machinery lives in `acs_verify::differential`; these tests
//! only declare *which* arms over *which* sweep.

use acs_dse::{inject_faults, SweepSpec};
use acs_hw::{DataType, DeviceConfig};
use acs_verify::{design_digest, DiffCase, Differential, EvalPath, Transform};

#[test]
fn factored_sweep_is_bit_identical_to_planned_with_faults() {
    // 512 points, with a fault injected every 7th: the factored pipeline
    // must reproduce the planned pipeline's successes bit-for-bit AND
    // fail at exactly the same indices with the same error kinds.
    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    assert!(candidates.len() >= 200, "need a representative sweep, got {}", candidates.len());
    let injected = inject_faults(&mut candidates, 7);
    assert!(!injected.is_empty());

    let case = DiffCase::paths("factored-vs-planned-faulted", EvalPath::Factored, EvalPath::Planned);
    let report = Differential::paper_default().run(&candidates, &case);
    assert_eq!(report.points, candidates.len());
    assert!(report.ok > 0, "the sweep must produce successes");
    assert!(report.failed > 0, "the injected faults must reach the ledger");
    report.assert_clean();
}

#[test]
fn factored_sweep_is_bit_identical_across_mixed_dtypes() {
    // A sweep whose devices alternate int8 / fp16 / fp32 exercises one
    // leg-table key set per datatype in a single run: the compute and
    // memory keys carry the dtype, and — because allreduce payloads scale
    // with operand width — so does the comm key. Datatype lives on the
    // DeviceConfig rather than the swept candidate axes, so this
    // comparison runs config-by-config.
    let base = SweepSpec::table3_fig6().configs(4800.0);
    let configs: Vec<DeviceConfig> = base
        .iter()
        .take(48)
        .enumerate()
        .map(|(i, cfg)| {
            let dtype = match i % 3 {
                0 => DataType::Int8,
                1 => DataType::Fp16,
                _ => DataType::Fp32,
            };
            cfg.to_builder().datatype(dtype).build().expect("datatype swap keeps configs valid")
        })
        .collect();
    assert_eq!(configs.len(), 48);

    let r = acs_dse::DseRunner::new(
        acs_llm::ModelConfig::llama3_8b(),
        acs_llm::WorkloadConfig::paper_default(),
    );
    let factored = r.run_configs_factored(&configs);
    let planned = r.run_configs(&configs);
    for ((cfg, f), p) in configs.iter().zip(&factored).zip(&planned) {
        let f = f.as_ref().expect("healthy configs evaluate on the factored path");
        let p = p.as_ref().expect("healthy configs evaluate on the planned path");
        assert_eq!(
            design_digest(f).expect("designs serialise"),
            design_digest(p).expect("designs serialise"),
            "dtype {:?} diverged between factored and planned pipelines",
            cfg.datatype()
        );
    }
}

#[test]
fn candidate_permutation_does_not_move_factored_results() {
    // The same candidates in any order must produce the same per-design
    // results: leg keys derive from parameter values, not lattice
    // positions, so a shuffled sweep hits the same table entries. The
    // differential runner switches to set discipline automatically for
    // reordering transforms — (name, digest) multisets, bit for bit.
    let spec = SweepSpec {
        systolic_dims: vec![16, 32],
        lanes_per_core: vec![2, 4, 8],
        l1_kib: vec![192, 512, 1024],
        l2_mib: vec![32, 64],
        hbm_tb_s: vec![2.0, 2.8, 3.2],
        device_bw_gb_s: vec![500.0, 900.0],
    };
    let candidates = spec.candidates(4800.0);
    assert_eq!(candidates.len(), spec.cardinality());

    let case = DiffCase::metamorphic(
        "factored-shuffled",
        EvalPath::Factored,
        Transform::PermuteOrder { seed: 0xACE5 },
    );
    let report = Differential::paper_default().run(&candidates, &case);
    assert_eq!(report.points, candidates.len());
    report.assert_clean();
}
