//! Golden equivalence between the factored sweep evaluator and the
//! planned pipeline it memoises.
//!
//! The factored evaluator replaces per-point pricing with lookups into
//! dependency-keyed leg tables plus a `max()` combine. That is a pure
//! caching change: it must not move a single bit of any result. These
//! tests drive both pipelines over large sweeps — including injected
//! faults, mixed datatypes, and permuted axis orders — and compare the
//! canonical JSON digests of every evaluated design plus the full
//! failure ledger.

use acs_cache::CacheKey;
use acs_dse::{inject_faults, DseRunner, EvaluatedDesign, SweepSpec};
use acs_hw::{DataType, DeviceConfig};
use acs_llm::{ModelConfig, WorkloadConfig};

/// Canonical content digest of one evaluated design. Any drift in any
/// field — including the float bit patterns, which the canonical codec
/// round-trips exactly — changes this value.
fn design_digest(design: &EvaluatedDesign) -> u64 {
    let value = design.to_json_value().expect("evaluated designs serialise");
    CacheKey::from_value(&value).digest()
}

fn runner() -> DseRunner {
    DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
}

#[test]
fn factored_sweep_is_bit_identical_to_planned_with_faults() {
    // 512 points, with a fault injected every 7th: the factored pipeline
    // must reproduce the planned pipeline's successes bit-for-bit AND
    // fail at exactly the same indices with the same error kinds.
    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    assert!(candidates.len() >= 200, "need a representative sweep, got {}", candidates.len());
    let injected = inject_faults(&mut candidates, 7);
    assert!(!injected.is_empty());

    let factored = runner().run_report_factored(&candidates);
    let planned = runner().run_report(&candidates);

    assert_eq!(factored.total(), candidates.len());
    assert_eq!(factored.total(), planned.total());

    // Failure ledger: same indices, same candidate names, same kinds.
    assert_eq!(factored.failures.len(), planned.failures.len());
    for (f, p) in factored.failures.iter().zip(&planned.failures) {
        assert_eq!(f.index, p.index);
        assert_eq!(f.params, p.params);
        assert_eq!(f.kind(), p.kind());
    }

    // Successes: same indices, and canonically identical content.
    assert_eq!(factored.designs.len(), planned.designs.len());
    assert!(!factored.designs.is_empty());
    for ((fi, fd), (pi, pd)) in factored.designs.iter().zip(&planned.designs) {
        assert_eq!(fi, pi);
        assert_eq!(
            design_digest(fd),
            design_digest(pd),
            "design {} diverged between factored and planned pipelines",
            fd.name
        );
        assert_eq!(fd.ttft_s.to_bits(), pd.ttft_s.to_bits());
        assert_eq!(fd.tbt_s.to_bits(), pd.tbt_s.to_bits());
    }
}

#[test]
fn factored_sweep_is_bit_identical_across_mixed_dtypes() {
    // A sweep whose devices alternate int8 / fp16 / fp32 exercises one
    // leg-table key set per datatype in a single run: the compute and
    // memory keys carry the dtype, and — because allreduce payloads scale
    // with operand width — so does the comm key.
    let base = SweepSpec::table3_fig6().configs(4800.0);
    let configs: Vec<DeviceConfig> = base
        .iter()
        .take(48)
        .enumerate()
        .map(|(i, cfg)| {
            let dtype = match i % 3 {
                0 => DataType::Int8,
                1 => DataType::Fp16,
                _ => DataType::Fp32,
            };
            cfg.to_builder().datatype(dtype).build().expect("datatype swap keeps configs valid")
        })
        .collect();
    assert_eq!(configs.len(), 48);

    let r = runner();
    let factored = r.run_configs_factored(&configs);
    let planned = r.run_configs(&configs);
    for ((cfg, f), p) in configs.iter().zip(&factored).zip(&planned) {
        let f = f.as_ref().expect("healthy configs evaluate on the factored path");
        let p = p.as_ref().expect("healthy configs evaluate on the planned path");
        assert_eq!(
            design_digest(f),
            design_digest(p),
            "dtype {:?} diverged between factored and planned pipelines",
            cfg.datatype()
        );
    }
}

#[test]
fn axis_value_permutation_does_not_move_factored_results() {
    // The same axis value *sets* in a different order must produce the
    // same per-design results: leg keys derive from parameter values, not
    // lattice positions, so a permuted sweep hits the same table entries.
    let spec = SweepSpec {
        systolic_dims: vec![16, 32],
        lanes_per_core: vec![2, 4, 8],
        l1_kib: vec![192, 512, 1024],
        l2_mib: vec![32, 64],
        hbm_tb_s: vec![2.0, 2.8, 3.2],
        device_bw_gb_s: vec![500.0, 900.0],
    };
    let permuted = SweepSpec {
        systolic_dims: vec![32, 16],
        lanes_per_core: vec![8, 2, 4],
        l1_kib: vec![1024, 192, 512],
        l2_mib: vec![64, 32],
        hbm_tb_s: vec![3.2, 2.0, 2.8],
        device_bw_gb_s: vec![900.0, 500.0],
    };

    let r = runner();
    let original = r.run_factored(&spec, 4800.0);
    let shuffled = r.run_factored(&permuted, 4800.0);
    assert_eq!(original.total(), spec.cardinality());
    assert_eq!(original.total(), shuffled.total());
    assert_eq!(original.failures.len(), shuffled.failures.len());

    // Designs land at different sweep indices but must be the same set
    // of (name, digest) pairs, bit for bit.
    let digests = |report: &acs_dse::SweepReport| {
        let mut v: Vec<(String, u64)> =
            report.successes().map(|d| (d.name.clone(), design_digest(d))).collect();
        v.sort();
        v
    };
    assert_eq!(digests(&original), digests(&shuffled));
}
