//! Physical-consistency checks of the simulator across a whole design
//! space: no modelled latency may beat the hard bounds its own inputs
//! imply.

use acs::prelude::*;
use acs_llm::{InferencePhase, LayerGraph};
use acs_sim::{layer_energy, mfu};
use acs_hw::PowerModel;

fn designs() -> (Vec<EvaluatedDesign>, ModelConfig, WorkloadConfig) {
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();
    let spec = SweepSpec {
        systolic_dims: vec![16, 32],
        lanes_per_core: vec![1, 4],
        l1_kib: vec![64, 192, 1024],
        l2_mib: vec![8, 40],
        hbm_tb_s: vec![0.8, 2.0, 3.2],
        device_bw_gb_s: vec![600.0],
    };
    (DseRunner::new(model.clone(), work).run(&spec, 4800.0), model, work)
}

#[test]
fn no_design_beats_its_compute_bound_on_prefill() {
    let (designs, model, work) = designs();
    let graph = LayerGraph::build(&model, &work, InferencePhase::Prefill, 4);
    for d in &designs {
        // Per-device matmul FLOPs at the design's (just-under-TPP) peak.
        let peak_flops = d.tpp / 16.0 * 1e12;
        let floor = graph.matmul_flops() / peak_flops;
        assert!(
            d.ttft_s > floor,
            "{}: TTFT {} beats the compute floor {}",
            d.name,
            d.ttft_s,
            floor
        );
    }
}

#[test]
fn no_design_beats_its_weight_stream_on_decode() {
    let (designs, ..) = designs();
    // GPT-3 per-device weights at tp=4, fp16.
    let weight_bytes = 2.0 * 12.0 * 12288.0_f64 * 12288.0 / 4.0;
    for d in &designs {
        let floor = weight_bytes / (d.params.hbm_tb_s * 1e12);
        assert!(
            d.tbt_s > floor,
            "{}: TBT {} beats the weight-stream floor {}",
            d.name,
            d.tbt_s,
            floor
        );
    }
}

#[test]
fn mfu_is_bounded_across_the_design_space() {
    let (designs, model, work) = designs();
    let graph = LayerGraph::build(&model, &work, InferencePhase::Prefill, 4);
    for d in designs.iter().take(24) {
        // Rebuild the system to evaluate MFU at the design's spec.
        let cfg = DeviceConfig::builder()
            .core_count(d.params.core_count)
            .lanes_per_core(d.params.lanes_per_core)
            .systolic(SystolicDims::square(d.params.systolic_dim))
            .l1_kib_per_core(d.params.l1_kib)
            .l2_mib(d.params.l2_mib)
            .hbm_bandwidth_tb_s(d.params.hbm_tb_s)
            .device_bandwidth_gb_s(d.params.device_bw_gb_s)
            .build()
            .unwrap();
        let system = SystemConfig::quad(cfg).unwrap();
        let v = mfu(graph.matmul_flops() * 4.0, d.ttft_s, &system);
        assert!(v > 0.0 && v <= 1.0, "{}: MFU {v}", d.name);
    }
}

#[test]
fn energy_is_monotone_in_work() {
    let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap());
    let p = PowerModel::n7();
    let model = ModelConfig::gpt3_175b();
    let short = WorkloadConfig::new(32, 512, 16);
    let long = WorkloadConfig::new(32, 4096, 16);
    let e_short = layer_energy(&sim, &model, &short, InferencePhase::Prefill, &p);
    let e_long = layer_energy(&sim, &model, &long, InferencePhase::Prefill, &p);
    assert!(e_long.node_j > e_short.node_j, "8x the tokens must cost more energy");
    // And average power never exceeds the TDP-style bound.
    let tdp = p.tdp_w(sim.system().device()) * 4.0;
    for e in [e_short, e_long] {
        assert!(e.avg_power_w <= tdp * 1.05, "{} W vs TDP {tdp} W", e.avg_power_w);
    }
}

#[test]
fn latency_breakdowns_account_for_all_time() {
    let sim = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like()).unwrap());
    let work = WorkloadConfig::paper_default();
    for model in [ModelConfig::gpt3_175b(), ModelConfig::llama3_8b(), ModelConfig::mixtral_8x7b()]
    {
        for phase in [InferencePhase::Prefill, work.decode_phase()] {
            let lat = sim.simulate_layer(&model, &work, phase);
            let sum: f64 = lat.ops().iter().map(|o| o.time_s).sum();
            assert!((sum - lat.total_s()).abs() < 1e-12, "{} {phase}", model.name());
            for op in lat.ops() {
                assert!(op.time_s >= op.overhead_s, "{}", op.name);
                assert!(op.time_s.is_finite() && op.time_s > 0.0, "{}", op.name);
            }
        }
    }
}

#[test]
fn tbt_orders_by_memory_bandwidth_within_fixed_architecture() {
    let (designs, ..) = designs();
    // Group designs differing only in HBM bandwidth; TBT must be
    // monotone decreasing in bandwidth inside each group.
    for a in &designs {
        for b in &designs {
            let same_arch = a.params.systolic_dim == b.params.systolic_dim
                && a.params.lanes_per_core == b.params.lanes_per_core
                && a.params.l1_kib == b.params.l1_kib
                && a.params.l2_mib == b.params.l2_mib;
            if same_arch && a.params.hbm_tb_s < b.params.hbm_tb_s {
                assert!(
                    a.tbt_s >= b.tbt_s * 0.999,
                    "{} vs {}: more bandwidth must not hurt decode",
                    a.name,
                    b.name
                );
            }
        }
    }
}
