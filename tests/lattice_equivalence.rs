//! Golden equivalence between the lattice sweep evaluator and the
//! factored pipeline it vectorises, expressed as differential cases.
//!
//! The lattice engine prices each cost leg as a structure-of-arrays
//! vector over only the axes in its dependency key and combines per
//! point with a precompiled program. In exact mode that is a pure
//! evaluation-order change: it must not move a single bit of any
//! result, successes and failure ledger alike. The comparison machinery
//! lives in `acs_verify::differential`; these tests only declare
//! *which* arms over *which* sweep.

use acs_dse::{inject_faults, SweepSpec};
use acs_hw::{DataType, DeviceConfig};
use acs_verify::{design_digest, DiffCase, Differential, EvalPath, Transform};

#[test]
fn lattice_sweep_is_bit_identical_to_factored_with_faults() {
    // 512 points, with a fault injected every 7th: the lattice pipeline
    // must reproduce the factored pipeline's successes bit-for-bit AND
    // fail at exactly the same indices with the same error kinds — a
    // faulted candidate demotes itself off the fused fast path and is
    // evaluated point-wise, so the ledger entry is the factored one.
    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    assert!(candidates.len() >= 200, "need a representative sweep, got {}", candidates.len());
    let injected = inject_faults(&mut candidates, 7);
    assert!(!injected.is_empty());

    let case = DiffCase::paths("lattice-vs-factored-faulted", EvalPath::Lattice, EvalPath::Factored);
    let report = Differential::paper_default().run(&candidates, &case);
    assert_eq!(report.points, candidates.len());
    assert!(report.ok > 0, "the sweep must produce successes");
    assert!(report.failed > 0, "the injected faults must reach the ledger");
    report.assert_clean();
}

#[test]
fn lattice_sweep_is_bit_identical_across_mixed_dtypes() {
    // A sweep whose devices alternate int8 / fp16 / fp32 exercises one
    // fused-table key set and one combine program per datatype in a
    // single run: dtype sits in every leg key and selects the program.
    // Datatype lives on the DeviceConfig rather than the swept candidate
    // axes, so this comparison runs config-by-config.
    let base = SweepSpec::table3_fig6().configs(4800.0);
    let configs: Vec<DeviceConfig> = base
        .iter()
        .take(48)
        .enumerate()
        .map(|(i, cfg)| {
            let dtype = match i % 3 {
                0 => DataType::Int8,
                1 => DataType::Fp16,
                _ => DataType::Fp32,
            };
            cfg.to_builder().datatype(dtype).build().expect("datatype swap keeps configs valid")
        })
        .collect();
    assert_eq!(configs.len(), 48);

    let r = acs_dse::DseRunner::new(
        acs_llm::ModelConfig::llama3_8b(),
        acs_llm::WorkloadConfig::paper_default(),
    );
    let lattice = r.run_configs_lattice(&configs);
    let factored = r.run_configs_factored(&configs);
    for ((cfg, l), f) in configs.iter().zip(&lattice).zip(&factored) {
        let l = l.as_ref().expect("healthy configs evaluate on the lattice path");
        let f = f.as_ref().expect("healthy configs evaluate on the factored path");
        assert_eq!(
            design_digest(l).expect("designs serialise"),
            design_digest(f).expect("designs serialise"),
            "dtype {:?} diverged between lattice and factored pipelines",
            cfg.datatype()
        );
    }
}

#[test]
fn candidate_permutation_does_not_move_lattice_results() {
    // The same candidates in any order must produce the same per-design
    // results: fused-table keys derive from parameter values, not
    // lattice positions, so a shuffled sweep hits the same entries. The
    // differential runner switches to set discipline automatically for
    // reordering transforms — (name, digest) multisets, bit for bit.
    let spec = SweepSpec {
        systolic_dims: vec![16, 32],
        lanes_per_core: vec![2, 4, 8],
        l1_kib: vec![192, 512, 1024],
        l2_mib: vec![32, 64],
        hbm_tb_s: vec![2.0, 2.8, 3.2],
        device_bw_gb_s: vec![500.0, 900.0],
    };
    let candidates = spec.candidates(4800.0);
    assert_eq!(candidates.len(), spec.cardinality());

    let case = DiffCase::metamorphic(
        "lattice-shuffled",
        EvalPath::Lattice,
        Transform::PermuteOrder { seed: 0xACE5 },
    );
    let report = Differential::paper_default().run(&candidates, &case);
    assert_eq!(report.points, candidates.len());
    report.assert_clean();
}
