//! Property-style tests over the extension subsystems: chiplets, binning,
//! power, serving traces, the policy timeline, and JSON round-trips.
//!
//! Deterministic SplitMix64 sampling stands in for a property-testing
//! crate (unavailable in the offline build); each failure message carries
//! its case index for reproduction.

use acs::prelude::*;
use acs_hw::binning::{Bin, BinningModel};
use acs_hw::chiplet::{ChipletPackage, PackagingModel};
use acs_hw::PowerModel;
use acs_llm::rng::SplitMix64;
use acs_llm::{LengthDistribution, RequestTrace};
use acs_policy::{classify_as_of, Classification};

fn pick<T: Copy>(rng: &mut SplitMix64, options: &[T]) -> T {
    options[(rng.next_u64() % options.len() as u64) as usize]
}

fn uni(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn gen_device(rng: &mut SplitMix64) -> DeviceConfig {
    DeviceConfig::builder()
        .core_count(pick(rng, &[64, 96, 108, 128, 144, 192, 256]))
        .lanes_per_core(pick(rng, &[1, 2, 3, 4]))
        .systolic(SystolicDims::square(pick(rng, &[8, 16, 32])))
        .l1_kib_per_core(pick(rng, &[64, 192, 512]))
        .l2_mib(pick(rng, &[16, 40, 64]))
        .hbm_bandwidth_tb_s(pick(rng, &[0.8, 1.2, 1.6, 2.0, 2.4, 3.2]))
        .build()
        .expect("valid")
}

/// Splitting a device into chiplets preserves package TPP exactly (when
/// the core count divides) and never shrinks total silicon.
#[test]
fn chiplet_split_preserves_tpp() {
    let mut rng = SplitMix64::new(201);
    let am = AreaModel::n7();
    for case in 0..48 {
        let device = gen_device(&mut rng);
        let n = pick(&mut rng, &[1u32, 2, 4]);
        if device.core_count() % n != 0 {
            continue;
        }
        let pkg = ChipletPackage::new(device.clone(), n, PackagingModel::advanced()).unwrap();
        assert!((pkg.package_tpp().0 - device.tpp().0).abs() < 1e-6, "case {case}");
        let mono = ChipletPackage::new(device, 1, PackagingModel::advanced()).unwrap();
        assert!(
            pkg.package_area_mm2(&am) >= mono.package_area_mm2(&am) - 1e-9,
            "case {case}"
        );
    }
}

/// Per-chiplet dies shrink monotonically with the split factor.
#[test]
fn chiplet_dies_shrink_with_split() {
    let mut rng = SplitMix64::new(202);
    let am = AreaModel::n7();
    for case in 0..48 {
        let device = gen_device(&mut rng);
        if device.core_count() % 4 != 0 {
            continue;
        }
        let areas: Vec<f64> = [1u32, 2, 4]
            .iter()
            .map(|&n| {
                ChipletPackage::new(device.clone(), n, PackagingModel::advanced())
                    .unwrap()
                    .chiplet_area_mm2(&am)
            })
            .collect();
        assert!(areas[0] > areas[1] && areas[1] > areas[2], "case {case}: {areas:?}");
    }
}

/// Binning yields are probabilities, monotone in the core requirement.
#[test]
fn binning_yield_is_monotone() {
    let mut rng = SplitMix64::new(203);
    let am = AreaModel::n7();
    for case in 0..48 {
        let device = gen_device(&mut rng);
        let d0 = uni(&mut rng, 0.05, 0.6);
        let area = am.die_area(&device);
        let model = BinningModel::for_device(&device, &area);
        let cm = CostModel { defect_density_per_cm2: d0, ..CostModel::n7() };
        let mut last = 0.0;
        let cores = device.core_count();
        for req in [cores, cores.saturating_sub(4).max(1), cores / 2, 1] {
            let y = model.bin_yield(&cm, req);
            assert!((0.0..=1.0).contains(&y), "case {case}: yield = {y}");
            assert!(y >= last - 1e-12, "case {case}: relaxing must not reduce yield");
            last = y;
        }
        // Splits always partition.
        let bins = [Bin::new("a", cores), Bin::new("b", cores / 2)];
        let split = model.bin_split(&cm, &bins);
        assert!((split.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
    }
}

/// Power accounting: TDP dominates idle, and both are positive.
#[test]
fn power_model_ordering() {
    let mut rng = SplitMix64::new(204);
    let p = PowerModel::n7();
    for case in 0..48 {
        let device = gen_device(&mut rng);
        let idle = p.static_w(&device);
        let tdp = p.tdp_w(&device);
        assert!(idle > 0.0, "case {case}");
        assert!(tdp > idle, "case {case}");
        // Busy intervals cost more than idle intervals of equal length.
        let idle_j = p.interval_energy_j(&device, 0.0, 0.0, 0.0, 0.0, 1e-3);
        let busy_j = p.interval_energy_j(&device, 1e12, 1e9, 1e9, 1e6, 1e-3);
        assert!(busy_j > idle_j, "case {case}");
    }
}

/// Trace generation: deterministic per seed, arrivals sorted and within
/// the window, counts near rate × duration, and invalid inputs rejected
/// with typed errors.
#[test]
fn traces_are_well_formed() {
    let mut rng = SplitMix64::new(205);
    let d_in = LengthDistribution::chat_prompts();
    let d_out = LengthDistribution::chat_outputs();
    for case in 0..24 {
        let rate = uni(&mut rng, 0.5, 20.0);
        let seed = rng.next_u64() % 1000;
        let t1 = RequestTrace::synthetic(rate, 50.0, d_in, d_out, seed).unwrap();
        let t2 = RequestTrace::synthetic(rate, 50.0, d_in, d_out, seed).unwrap();
        assert_eq!(t1, t2, "case {case}");
        for pair in t1.requests().windows(2) {
            assert!(pair[0].arrival_s <= pair[1].arrival_s, "case {case}");
        }
        if let Some(last) = t1.requests().last() {
            assert!(last.arrival_s < 50.0, "case {case}");
        }
        let expected = rate * 50.0;
        let sigma = expected.sqrt();
        assert!(
            (t1.len() as f64 - expected).abs() < 6.0 * sigma + 5.0,
            "case {case}: n = {}, expected ≈ {expected}",
            t1.len()
        );
    }
    for bad_rate in [0.0, -1.0, f64::NAN] {
        assert!(RequestTrace::synthetic(bad_rate, 10.0, d_in, d_out, 0).is_err());
    }
}

/// The rule timeline: pre-ACR is always unrestricted, and every
/// generation yields a total classification.
#[test]
fn timeline_pre_acr_is_always_free() {
    let mut rng = SplitMix64::new(206);
    for case in 0..64 {
        let tpp = uni(&mut rng, 0.0, 30_000.0);
        let bw = uni(&mut rng, 0.0, 1200.0);
        let area = uni(&mut rng, 100.0, 3000.0);
        let m = acs_policy::DeviceMetrics::new(
            "probe", tpp, bw, area, true, MarketSegment::DataCenter);
        assert_eq!(
            classify_as_of(&m, 2021, 6),
            Classification::NotApplicable,
            "case {case}"
        );
        let _ = classify_as_of(&m, 2023, 1);
        let _ = classify_as_of(&m, 2024, 6);
    }
}

/// JSON round-trips for the configuration type a downstream user would
/// persist (the workspace codec, replacing the former serde path).
#[test]
fn device_config_json_round_trip() {
    let mut rng = SplitMix64::new(207);
    for case in 0..48 {
        let device = gen_device(&mut rng);
        let json = device.to_json_string();
        let back = DeviceConfig::from_json_str(&json).unwrap();
        assert_eq!(device, back, "case {case}");
    }
}

/// Elasticities stay finite across reference designs.
#[test]
fn elasticities_are_finite() {
    let mut rng = SplitMix64::new(208);
    for case in 0..12 {
        let device = gen_device(&mut rng);
        let es = acs_dse::elasticities(
            &device,
            &ModelConfig::llama3_8b(),
            &WorkloadConfig::paper_default(),
            acs_dse::sensitivity::Target::Tbt,
        )
        .unwrap();
        for e in es {
            assert!(e.value.is_finite(), "case {case}: {e}");
        }
    }
}

/// The expert-parallel all-to-all is monotone in payload bytes and in
/// the group width, degenerates to a free exchange at one device exactly
/// like the all-reduce, and never moves more wire volume than an
/// all-reduce of the same payload over the same group.
#[test]
fn alltoall_cost_is_monotone_and_degenerate_like_allreduce() {
    use acs_sim::{allreduce_cost, alltoall_cost, SimParams};
    let mut rng = SplitMix64::new(209);
    for case in 0..48 {
        let device = gen_device(&mut rng);
        let params =
            if case % 2 == 0 { SimParams::calibrated() } else { SimParams::ideal() };
        let system = SystemConfig::quad(device).unwrap();
        let bytes = 1u64 << (10 + rng.next_u64() % 21);
        let group = pick(&mut rng, &[2u32, 4, 8, 16, 64]);

        // Monotone in bytes at fixed group.
        let t_small = alltoall_cost(bytes, group, &system, &params).time_s();
        let t_large = alltoall_cost(bytes * 2, group, &system, &params).time_s();
        assert!(t_small > 0.0, "case {case}: a real exchange costs time");
        assert!(t_large > t_small, "case {case}: time must grow with payload");

        // Monotone in group width at fixed bytes: (g-1)/g volume and the
        // ring step count both grow with g.
        let t_wider = alltoall_cost(bytes, group * 2, &system, &params).time_s();
        assert!(t_wider > t_small, "case {case}: time must grow with the group");

        // One device: free, bit-equal to the degenerate all-reduce.
        let solo = SystemConfig::new(system.device().clone(), 1).unwrap();
        let a2a_solo = alltoall_cost(bytes, 1, &system, &params);
        assert_eq!(a2a_solo.time_s(), 0.0, "case {case}");
        assert_eq!(
            a2a_solo.time_s(),
            allreduce_cost(bytes, &solo, &params).time_s(),
            "case {case}: degenerate all-to-all must match degenerate all-reduce"
        );

        // Exchange crosses the wire once; reduce-broadcast twice. With
        // group == device_count the comparison is apples to apples.
        let a2a4 = alltoall_cost(bytes, 4, &system, &params);
        let ar4 = allreduce_cost(bytes, &system, &params);
        assert!(
            a2a4.wire_s < ar4.wire_s,
            "case {case}: all-to-all must move less volume than all-reduce"
        );
    }
}
