//! Property-based tests over the extension subsystems: chiplets, binning,
//! power, serving traces, the policy timeline, and serde round-trips.

use acs::prelude::*;
use acs_hw::binning::{Bin, BinningModel};
use acs_hw::chiplet::{ChipletPackage, PackagingModel};
use acs_hw::PowerModel;
use acs_llm::{LengthDistribution, RequestTrace};
use acs_policy::{classify_as_of, Classification};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceConfig> {
    (
        prop::sample::select(vec![64u32, 96, 108, 128, 144, 192, 256]),
        1u32..=4,
        prop::sample::select(vec![8u32, 16, 32]),
        prop::sample::select(vec![64u32, 192, 512]),
        prop::sample::select(vec![16u32, 40, 64]),
        prop::sample::select(vec![0.8f64, 1.2, 1.6, 2.0, 2.4, 3.2]),
    )
        .prop_map(|(cores, lanes, dim, l1, l2, hbm)| {
            DeviceConfig::builder()
                .core_count(cores)
                .lanes_per_core(lanes)
                .systolic(SystolicDims::square(dim))
                .l1_kib_per_core(l1)
                .l2_mib(l2)
                .hbm_bandwidth_tb_s(hbm)
                .build()
                .expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Splitting a device into chiplets preserves package TPP exactly
    /// (when the core count divides) and never shrinks total silicon.
    #[test]
    fn chiplet_split_preserves_tpp(device in arb_device(), n in 1u32..=4) {
        prop_assume!(device.core_count() % n == 0);
        let am = AreaModel::n7();
        let pkg = ChipletPackage::new(device.clone(), n, PackagingModel::advanced()).unwrap();
        prop_assert!((pkg.package_tpp().0 - device.tpp().0).abs() < 1e-6);
        let mono = ChipletPackage::new(device, 1, PackagingModel::advanced()).unwrap();
        prop_assert!(pkg.package_area_mm2(&am) >= mono.package_area_mm2(&am) - 1e-9);
    }

    /// Per-chiplet dies shrink monotonically with the split factor.
    #[test]
    fn chiplet_dies_shrink_with_split(device in arb_device()) {
        prop_assume!(device.core_count() % 4 == 0);
        let am = AreaModel::n7();
        let areas: Vec<f64> = [1u32, 2, 4]
            .iter()
            .map(|&n| {
                ChipletPackage::new(device.clone(), n, PackagingModel::advanced())
                    .unwrap()
                    .chiplet_area_mm2(&am)
            })
            .collect();
        prop_assert!(areas[0] > areas[1] && areas[1] > areas[2]);
    }

    /// Binning yields are probabilities, monotone in the core requirement.
    #[test]
    fn binning_yield_is_monotone(device in arb_device(), d0 in 0.05f64..0.6) {
        let am = AreaModel::n7();
        let area = am.die_area(&device);
        let model = BinningModel::for_device(&device, &area);
        let cm = CostModel { defect_density_per_cm2: d0, ..CostModel::n7() };
        let mut last = 0.0;
        let cores = device.core_count();
        for req in [cores, cores.saturating_sub(4).max(1), cores / 2, 1] {
            let y = model.bin_yield(&cm, req);
            prop_assert!((0.0..=1.0).contains(&y), "yield = {y}");
            prop_assert!(y >= last - 1e-12, "relaxing must not reduce yield");
            last = y;
        }
        // Splits always partition.
        let bins = [Bin::new("a", cores), Bin::new("b", cores / 2)];
        let split = model.bin_split(&cm, &bins);
        prop_assert!((split.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Power accounting: TDP dominates idle, and both are positive.
    #[test]
    fn power_model_ordering(device in arb_device()) {
        let p = PowerModel::n7();
        let idle = p.static_w(&device);
        let tdp = p.tdp_w(&device);
        prop_assert!(idle > 0.0);
        prop_assert!(tdp > idle);
        // Busy intervals cost more than idle intervals of equal length.
        let idle_j = p.interval_energy_j(&device, 0.0, 0.0, 0.0, 0.0, 1e-3);
        let busy_j = p.interval_energy_j(&device, 1e12, 1e9, 1e9, 1e6, 1e-3);
        prop_assert!(busy_j > idle_j);
    }

    /// Trace generation: deterministic per seed, arrivals sorted and
    /// within the window, counts near the rate × duration.
    #[test]
    fn traces_are_well_formed(rate in 0.5f64..20.0, seed in 0u64..1000) {
        let d_in = LengthDistribution::chat_prompts();
        let d_out = LengthDistribution::chat_outputs();
        let t1 = RequestTrace::synthetic(rate, 50.0, d_in, d_out, seed);
        let t2 = RequestTrace::synthetic(rate, 50.0, d_in, d_out, seed);
        prop_assert_eq!(&t1, &t2);
        for pair in t1.requests().windows(2) {
            prop_assert!(pair[0].arrival_s <= pair[1].arrival_s);
        }
        if let Some(last) = t1.requests().last() {
            prop_assert!(last.arrival_s < 50.0);
        }
        let expected = rate * 50.0;
        let sigma = expected.sqrt();
        prop_assert!(
            (t1.len() as f64 - expected).abs() < 6.0 * sigma + 5.0,
            "n = {}, expected ≈ {expected}",
            t1.len()
        );
    }

    /// The rule timeline is monotone: a device never becomes LESS
    /// restricted as the generations advance… except where the October
    /// 2023 rule deliberately relaxed the bandwidth prong, so we assert
    /// the precise shape instead: pre-ACR is always unrestricted.
    #[test]
    fn timeline_pre_acr_is_always_free(
        tpp in 0.0f64..30_000.0,
        bw in 0.0f64..1200.0,
        area in 100.0f64..3000.0,
    ) {
        let m = acs_policy::DeviceMetrics::new(
            "probe", tpp, bw, area, true, MarketSegment::DataCenter);
        prop_assert_eq!(classify_as_of(&m, 2021, 6), Classification::NotApplicable);
        // And every generation yields a total classification.
        let _ = classify_as_of(&m, 2023, 1);
        let _ = classify_as_of(&m, 2024, 6);
    }

    /// Serde round-trips for the configuration types a downstream user
    /// would persist.
    #[test]
    fn device_config_serde_round_trip(device in arb_device()) {
        let json = serde_json::to_string(&device).unwrap();
        let back: DeviceConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(device, back);
    }

    /// Elasticities stay finite across reference designs.
    #[test]
    fn elasticities_are_finite(device in arb_device()) {
        let es = acs_dse::elasticities(
            &device,
            &ModelConfig::llama3_8b(),
            &WorkloadConfig::paper_default(),
            acs_dse::sensitivity::Target::Tbt,
        );
        for e in es {
            prop_assert!(e.value.is_finite(), "{e}");
        }
    }
}
