//! Dependency-free smoke benchmark.
//!
//! The criterion harness in `crates/bench` cannot build in the offline
//! environment (criterion is not vendored), which left the repo with no
//! runnable performance check at all. This test is the std-only
//! replacement: it times the hot paths with `std::time::Instant`, prints
//! a small report, and enforces only very generous ceilings — it exists
//! to catch order-of-magnitude regressions and to prove the paths run,
//! not to produce publishable numbers.
//!
//! Four artefacts are written for the perf trajectory (schema
//! documented in README "Observability"): `BENCH_dse.json` from
//! [`bench_smoke`], `BENCH_serve.json` from [`bench_serve`],
//! `BENCH_whatif.json` from [`bench_whatif`], and
//! `BENCH_scenarios.json` from [`bench_scenarios`], each
//! `{"schema": "acs-bench-v1", "suite": ..., "metrics": {...}}` with
//! every metric a finite number. `ACS_BENCH_DIR` overrides the output
//! directory (default: the repo root).
//!
//! [`bench_smoke`] also enforces the telemetry contract that profiling is
//! cheap: the same sweep with the global registry enabled may cost at
//! most 5% more wall time than with it disabled.
//!
//! Ignored by default so `cargo test` stays fast; run via
//! `scripts/bench-smoke.sh`, which passes `--test-threads=1` so the two
//! benches never time each other's noise.

use acs::prelude::*;
use acs_cache::ShardedCache;
use acs_dse::{DseRunner, SweepSpec};
use acs_errors::json::{object, Value};
use acs_llm::{LengthDistribution, RequestTrace};
use acs_serve::{run_loadgen, LoadMode, LoadgenConfig, ServeConfig, Server};
use acs_sim::{simulate_serving_cached, ServingConfig, StepCostCache};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn time<T>(label: &str, iterations: u32, mut f: impl FnMut() -> T) -> f64 {
    // One warm-up call keeps lazy initialisation out of the measurement.
    let _ = f();
    let started = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(f());
    }
    let per_call_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(iterations);
    println!("{label:<44} {per_call_ms:>10.3} ms/call  ({iterations} calls)");
    per_call_ms
}

/// One timed round: `iterations` calls of `f`, in ms per call.
fn round_ms<T>(iterations: u32, f: &mut impl FnMut() -> T) -> f64 {
    let started = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(f());
    }
    started.elapsed().as_secs_f64() * 1e3 / f64::from(iterations)
}

fn bench_dir() -> PathBuf {
    std::env::var_os("ACS_BENCH_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from)
}

/// Write `BENCH_<suite>.json` in the stable `acs-bench-v1` schema.
fn write_bench(suite: &str, metrics: Vec<(&str, f64)>) {
    let members: Vec<(&str, Value)> = metrics
        .into_iter()
        .map(|(name, v)| {
            assert!(v.is_finite(), "bench metric {name} must be finite, got {v}");
            (name, Value::Number(v))
        })
        .collect();
    let doc = object(vec![
        ("schema", Value::String("acs-bench-v1".to_owned())),
        ("suite", Value::String(suite.to_owned())),
        ("metrics", object(members)),
    ]);
    let path = bench_dir().join(format!("BENCH_{suite}.json"));
    std::fs::write(&path, doc.to_json() + "\n").expect("write bench artefact");
    println!("wrote {}", path.display());
}

#[test]
#[ignore = "smoke benchmark; run via scripts/bench-smoke.sh"]
fn bench_smoke() {
    let node = SystemConfig::quad(DeviceConfig::a100_like()).expect("quad node");
    let sim = Simulator::new(node);
    let gpt3 = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();

    let layer_ms = time("simulate_layer (GPT-3 175B prefill)", 200, || {
        sim.simulate_layer(&gpt3, &work, InferencePhase::Prefill)
    });

    let runner = DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default());
    let a100 = DeviceConfig::a100_like();
    let eval_ms = time("DseRunner::try_evaluate (uncached)", 50, || {
        runner.try_evaluate(&a100).expect("evaluation succeeds")
    });

    let cache = Arc::new(ShardedCache::new(1024));
    let cached_runner = DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
        .with_cache(Arc::clone(&cache));
    cached_runner.try_evaluate(&a100).expect("prime the cache");
    let cached_ms = time("DseRunner::try_evaluate (cache hit)", 2000, || {
        cached_runner.try_evaluate(&a100).expect("cached evaluation succeeds")
    });

    let trace = RequestTrace::synthetic(
        4.0,
        5.0,
        LengthDistribution::chat_prompts(),
        LengthDistribution::chat_outputs(),
        7,
    )
    .expect("synthetic trace");
    let llama = ModelConfig::llama3_8b();
    let steps = StepCostCache::new(4096);
    // Prime so the timing below measures the steady (warm-cache) state.
    let _ = simulate_serving_cached(&sim, &llama, &trace, ServingConfig::default(), &steps);
    let serving_ms = time("simulate_serving_cached (warm steps)", 20, || {
        simulate_serving_cached(&sim, &llama, &trace, ServingConfig::default(), &steps)
    });

    // --- telemetry overhead on the sweep smoke path ---
    // The same parallel sweep with the global registry disabled (every
    // instrumentation site reduces to an atomic load and a branch) versus
    // enabled. The sweep runs exactly as the smoke sweeps in scripts/ci.sh
    // do — through the content-addressed cache, with a fresh cache per run
    // so every point is a first-visit miss like a cold `acs-dse --cache`
    // run. Two measurement-noise defences: the point list is smoke-run
    // sized (hundreds of points, like the repro sweeps) so per-round wall
    // time is dominated by evaluation work rather than thread-spawn jitter,
    // and each round times a back-to-back disabled/enabled *pair*
    // (alternating the order to cancel drift within the pair) with the
    // asserted overhead taken as the median of the per-pair ratios.
    let spec = SweepSpec {
        systolic_dims: vec![16],
        lanes_per_core: vec![2, 4],
        l1_kib: vec![192, 1024],
        l2_mib: vec![40],
        hbm_tb_s: (0..50).map(|i| 2.0 + 0.025 * f64::from(i)).collect(),
        device_bw_gb_s: vec![600.0],
    };
    let candidates = spec.candidates(4800.0);
    assert_eq!(candidates.len(), 200, "smoke-run-sized grid of unique points");
    let sweep_base = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
    let registry = acs_telemetry::global();
    let mut sweep = || {
        let runner = sweep_base.clone().with_cache(Arc::new(ShardedCache::new(1024)));
        runner.run_report(&candidates)
    };
    registry.enable();
    let _ = sweep(); // warm-up interns every instrument up front
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    let mut ratios = Vec::new();
    for round in 0..10 {
        let (off, on) = if round % 2 == 0 {
            registry.disable();
            let off = round_ms(20, &mut sweep);
            registry.enable();
            (off, round_ms(20, &mut sweep))
        } else {
            registry.enable();
            let on = round_ms(20, &mut sweep);
            registry.disable();
            (round_ms(20, &mut sweep), on)
        };
        offs.push(off);
        ons.push(on);
        ratios.push(on / off);
    }
    registry.disable();
    registry.reset();
    ratios.sort_by(f64::total_cmp);
    let median_ratio = (ratios[4] + ratios[5]) / 2.0;
    let sweep_off_ms = offs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let sweep_on_ms = ons.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let overhead_pct = (median_ratio - 1.0) * 100.0;
    println!(
        "{:<44} {:>10.3} ms/call  (disabled {:.3} ms, overhead {:+.2}%)",
        "run_report (profiled sweep)", sweep_on_ms, sweep_off_ms, overhead_pct
    );

    // --- planned vs legacy sweep throughput ---
    // The reference uncached sweep: Table 3's Figure-7 grid (1536 points,
    // all feasible at the 2400 TPP ceiling) under the acs-dse default
    // model/workload. `run_report` prices every point against layer plans
    // built once per sweep; `run_report_legacy` is the pre-plan pipeline
    // that lowers the operator graphs again at every point. Both run the
    // same scheduler and the same points, so the ratio isolates the
    // per-point work the plan cache removes.
    let reference = SweepSpec::table3_fig7().candidates(2400.0);
    assert_eq!(reference.len(), 1536, "reference sweep size");
    let planned_runner = sweep_base.clone();
    let mut planned_round = || planned_runner.run_report(&reference);
    let mut legacy_round = || planned_runner.run_report_legacy(&reference);
    let _ = planned_round(); // warm plan slot + thread pool paths
    let _ = legacy_round();
    let mut planned_ms = f64::INFINITY;
    let mut legacy_ms = f64::INFINITY;
    for _ in 0..3 {
        planned_ms = planned_ms.min(round_ms(1, &mut planned_round));
        legacy_ms = legacy_ms.min(round_ms(1, &mut legacy_round));
    }
    let points_per_sec = reference.len() as f64 / (planned_ms / 1e3);
    let points_per_sec_legacy = reference.len() as f64 / (legacy_ms / 1e3);
    let plan_speedup = legacy_ms / planned_ms;
    println!(
        "{:<44} {:>10.0} points/s  (legacy {:.0} points/s, {:.2}x)",
        "run_report (1536-point uncached sweep)", points_per_sec, points_per_sec_legacy, plan_speedup
    );

    // --- factored vs planned sweep throughput ---
    // Same reference sweep, same scheduler: the factored evaluator prices
    // each distinct cost leg once (this 1536-point lattice decomposes
    // into ~32 compute, 16 memory, and 3 comm leg keys) and serves every
    // other point from the leg tables with a handful of lookups and a
    // max() combine. Each round constructs a fresh runner, so the timing
    // includes cold leg tables: the measured speedup is within-sweep
    // factoring, not cross-round reuse.
    let mut factored_round = || {
        DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
            .run_report_factored(&reference)
    };
    let warm = factored_round(); // warm thread pool + allocator paths
    assert_eq!(warm.total(), reference.len());
    assert!(warm.failures.is_empty(), "reference sweep has no bad points");
    let mut factored_ms = f64::INFINITY;
    for _ in 0..3 {
        factored_ms = factored_ms.min(round_ms(1, &mut factored_round));
    }
    let points_per_sec_factored = reference.len() as f64 / (factored_ms / 1e3);
    let factored_speedup = planned_ms / factored_ms;
    println!(
        "{:<44} {:>10.0} points/s  (planned {:.0} points/s, {:.2}x)",
        "run_report_factored (1536-point sweep)",
        points_per_sec_factored,
        points_per_sec,
        factored_speedup
    );

    // Generous ceilings: only order-of-magnitude regressions fail.
    assert!(layer_ms < 100.0, "layer simulation took {layer_ms:.1} ms");
    assert!(
        plan_speedup >= 1.5,
        "planned sweep must beat the legacy pipeline by >= 1.5x, got {plan_speedup:.2}x \
         (planned {planned_ms:.1} ms vs legacy {legacy_ms:.1} ms)"
    );
    assert!(
        factored_speedup >= 2.0,
        "factored sweep must beat the planned pipeline by >= 2x, got {factored_speedup:.2}x \
         (factored {factored_ms:.1} ms vs planned {planned_ms:.1} ms)"
    );
    assert!(eval_ms < 500.0, "design evaluation took {eval_ms:.1} ms");
    // No cached-vs-uncached comparison here: a single analytic evaluation
    // is microseconds in release builds, on the same order as a cache
    // lookup. The cache's payoff is at the request level (serving steps,
    // whole /v1/simulate bodies), which the loadgen check in scripts/ci.sh
    // measures end to end.
    assert!(cached_ms < 5.0, "cache hit took {cached_ms:.3} ms");
    assert!(serving_ms < 2000.0, "serving simulation took {serving_ms:.1} ms");
    assert!(
        overhead_pct < 5.0,
        "profiling overhead {overhead_pct:.2}% exceeds the 5% budget \
         (enabled {sweep_on_ms:.3} ms vs disabled {sweep_off_ms:.3} ms)"
    );

    write_bench(
        "dse",
        vec![
            ("layer_ms", layer_ms),
            ("eval_ms", eval_ms),
            ("eval_cache_hit_ms", cached_ms),
            ("serving_warm_ms", serving_ms),
            ("sweep_ms", sweep_off_ms),
            ("sweep_profiled_ms", sweep_on_ms),
            ("telemetry_overhead_pct", overhead_pct),
            ("points_per_sec", points_per_sec),
            ("points_per_sec_legacy", points_per_sec_legacy),
            ("plan_speedup", plan_speedup),
            ("points_per_sec_factored", points_per_sec_factored),
            ("factored_speedup", factored_speedup),
        ],
    );
}

#[test]
#[ignore = "smoke benchmark; run via scripts/bench-smoke.sh"]
fn bench_lattice() {
    use acs_dse::LatticeScreenOptions;

    // --- lattice vs factored sweep throughput ---
    // The same reference sweep the plan/factored races use: Table 3's
    // Figure-7 grid, 1536 points, all feasible at the 2400 TPP ceiling.
    // Both paths use ONE persistent runner apiece, matching how the
    // server holds runners in `AppState` across `/v1/screen` and
    // what-if requests: the factored runner keeps its priced leg
    // tables, the lattice runner keeps its probe caches, fused vectors,
    // and evaluated cells. One asserted cold round fills the tables;
    // the timed rounds then measure the steady state — "price the grid,
    // not the points" — as the min over adaptively many rounds, which
    // also damps scheduler noise on shared hosts.
    let reference = SweepSpec::table3_fig7().candidates(2400.0);
    assert_eq!(reference.len(), 1536, "reference sweep size");
    let factored_runner = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
    let lattice_runner = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
    let mut factored_round = || factored_runner.run_report_factored(&reference);
    let mut lattice_round = || lattice_runner.run_report_lattice(&reference);
    let lattice_cold_ms = round_ms(1, &mut || {
        let report = lattice_runner.run_report_lattice(&reference);
        assert_eq!(report.total(), reference.len());
        assert!(report.failures.is_empty(), "reference sweep has no bad points");
    });
    let _ = factored_round();
    // A warm lattice round is ~200µs, so one scheduler hiccup inside a
    // round inflates it badly. Interleave min-rounds until neither
    // path's floor has improved for ten straight rounds (bounded at
    // sixty, ~80ms): on a shared host this outlasts transient load
    // where a fixed round count gets unlucky.
    let mut factored_ms = f64::INFINITY;
    let mut lattice_ms = f64::INFINITY;
    let mut stale = 0;
    for _ in 0..60 {
        let l = round_ms(1, &mut lattice_round);
        let f = round_ms(1, &mut factored_round);
        stale = if l < lattice_ms || f < factored_ms { 0 } else { stale + 1 };
        lattice_ms = lattice_ms.min(l);
        factored_ms = factored_ms.min(f);
        if stale >= 10 {
            break;
        }
    }
    let points_per_sec_lattice = reference.len() as f64 / (lattice_ms / 1e3);
    let points_per_sec_factored = reference.len() as f64 / (factored_ms / 1e3);
    let lattice_speedup = factored_ms / lattice_ms;
    println!(
        "{:<44} {:>10.0} points/s  (factored {:.0} points/s, {:.2}x)",
        "run_report_lattice (1536-point sweep)",
        points_per_sec_lattice,
        points_per_sec_factored,
        lattice_speedup
    );

    // --- branch-and-bound screening throughput ---
    // A screen prices the grid, not the points: sub-grids whose best
    // possible (TBT, cost) corner is strictly dominated by the running
    // Pareto front are skipped unpriced. The oversized cache/HBM axes
    // make most of this grid dominated, so the effective rate — nominal
    // lattice points per second of wall time — counts points the screen
    // proved it never had to materialize.
    let screen_spec = SweepSpec {
        systolic_dims: vec![16, 32],
        lanes_per_core: vec![2, 4, 8],
        l1_kib: vec![192, 512, 1024],
        l2_mib: vec![40, 80, 160, 320, 640, 1280],
        hbm_tb_s: vec![2.0, 2.4, 2.8, 3.2, 3.6, 4.0],
        device_bw_gb_s: vec![600.0, 900.0],
    };
    let runner = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
    let opts = LatticeScreenOptions::default();
    let mut screen_round = || runner.screen_lattice(&screen_spec, 2400.0, &opts);
    let warm_screen = screen_round();
    let nominal = warm_screen.stats.nominal_points;
    assert_eq!(nominal, screen_spec.cardinality() as u64, "screen covers the whole lattice");
    assert!(warm_screen.stats.pruned_points > 0, "the oversized axes must prune");
    assert!(!warm_screen.front.is_empty(), "the screen must produce a front");
    let mut screen_ms = f64::INFINITY;
    for _ in 0..5 {
        screen_ms = screen_ms.min(round_ms(1, &mut screen_round));
    }
    let screen_effective_pps = nominal as f64 / (screen_ms / 1e3);
    let screen_prune_ratio = warm_screen.stats.pruned_points as f64 / nominal as f64;
    println!(
        "{:<44} {:>10.0} points/s  ({} nominal, {:.0}% pruned unpriced)",
        "screen_lattice (pruned, effective rate)",
        screen_effective_pps,
        nominal,
        screen_prune_ratio * 100.0
    );

    assert!(
        lattice_speedup >= 5.0,
        "lattice sweep must beat the factored pipeline by >= 5x, got {lattice_speedup:.2}x \
         (lattice {lattice_ms:.1} ms vs factored {factored_ms:.1} ms)"
    );

    write_bench(
        "lattice",
        vec![
            ("points_per_sec_lattice", points_per_sec_lattice),
            ("points_per_sec_factored", points_per_sec_factored),
            ("lattice_speedup", lattice_speedup),
            ("lattice_cold_ms", lattice_cold_ms),
            ("screen_nominal_points", nominal as f64),
            ("screen_effective_points_per_sec", screen_effective_pps),
            ("screen_prune_ratio", screen_prune_ratio),
        ],
    );
}

#[test]
#[ignore = "smoke benchmark; run via scripts/bench-smoke.sh"]
fn bench_whatif() {
    use acs_dse::EvaluatedDesign;
    use acs_whatif::{RuleGrid, WhatIfEngine};

    // The tentpole scale of POST /v1/whatif: a 64-variant rule grid over
    // the curated 65-device DB plus the 4096-design synthetic fleet.
    // Fleet pricing goes through the factored path — cold prices every
    // leg once; warm re-runs the same sweep against populated leg tables,
    // which is the AppState steady state where repeated what-ifs re-price
    // nothing.
    let runner = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
    let spec = SweepSpec::synthetic_fleet();
    let started = Instant::now();
    let report = runner.run_factored(&spec, 4800.0);
    let fleet_cold_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.total(), 4096, "synthetic fleet size");
    assert!(report.failures.is_empty(), "synthetic fleet has no bad points");
    let mut fleet_warm_ms = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let again = runner.run_factored(&spec, 4800.0);
        fleet_warm_ms = fleet_warm_ms.min(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(again.total(), 4096);
    }
    println!(
        "{:<44} {:>10.3} ms/call  (warm {:.3} ms, {:.2}x)",
        "run_factored (4096-design fleet pricing)",
        fleet_cold_ms,
        fleet_warm_ms,
        fleet_cold_ms / fleet_warm_ms
    );

    let fleet: Vec<EvaluatedDesign> = report.designs.into_iter().map(|(_, d)| d).collect();
    let mut grid = RuleGrid::baseline();
    grid.tpp_threshold_2022 = vec![2400.0, 4800.0];
    grid.tpp_license = vec![1600.0, 2400.0, 3600.0, 4800.0];
    grid.pd_license = vec![3.0, 5.92];
    grid.mem_bw_license = vec![0.0, 600.0, 800.0, 1000.0];
    assert_eq!(grid.cardinality(), 64, "whatif reference grid size");
    let engine = WhatIfEngine::paper_default();
    let mut screen = || engine.run(&grid, &fleet).expect("what-if run");
    let (summary, _) = screen(); // warm-up, and shape check
    assert_eq!((summary.variants, summary.devices, summary.fleet_designs), (64, 65, 4096));
    let mut grid_ms = f64::INFINITY;
    for _ in 0..3 {
        grid_ms = grid_ms.min(round_ms(1, &mut screen));
    }
    // Rule-variants per second as a /v1/whatif request sees them: grid
    // screening plus the fleet pricing it rides on, cold and warm.
    let variants = 64.0;
    let variants_per_sec_cold = variants / ((fleet_cold_ms + grid_ms) / 1e3);
    let variants_per_sec_warm = variants / ((fleet_warm_ms + grid_ms) / 1e3);
    println!(
        "{:<44} {:>10.1} variants/s  (cold legs {:.1} variants/s)",
        "whatif 64-variant grid (warm legs)", variants_per_sec_warm, variants_per_sec_cold
    );

    // Generous ceilings: only order-of-magnitude regressions fail. The
    // fleet prices in milliseconds, so warm-vs-cold sits inside timer
    // noise here; the hard proof that warm sweeps re-price nothing is
    // the leg-counter test (tests/whatif_leg_reuse.rs), and this bound
    // only catches the warm path regressing into real re-pricing work.
    assert!(
        fleet_warm_ms <= fleet_cold_ms * 1.5,
        "warm leg tables regressed vs cold pricing ({fleet_warm_ms:.1} ms vs {fleet_cold_ms:.1} ms)"
    );
    assert!(
        variants_per_sec_warm >= 1.0,
        "what-if screening fell below 1 variant/s ({variants_per_sec_warm:.2})"
    );

    write_bench(
        "whatif",
        vec![
            ("fleet_cold_ms", fleet_cold_ms),
            ("fleet_warm_ms", fleet_warm_ms),
            ("leg_reuse_speedup", fleet_cold_ms / fleet_warm_ms),
            ("grid_ms", grid_ms),
            ("variants_per_sec_cold", variants_per_sec_cold),
            ("variants_per_sec_warm", variants_per_sec_warm),
        ],
    );
}

#[test]
#[ignore = "smoke benchmark; run via scripts/bench-smoke.sh"]
fn bench_scenarios() {
    use acs_scenarios::ScenarioRegistry;

    // Dense vs MoE sweep throughput through the scenario frontend: the
    // same 1536-point hardware lattice priced by the dense default
    // scenario and by the expert-parallel Mixtral scenario. Each round
    // builds a fresh runner, so the timing includes cold leg tables —
    // the measured ratio is the honest per-point cost of carrying the
    // router, the touched-expert weight traffic, and the dispatch /
    // combine all-to-all legs, not an artefact of cross-round reuse.
    let registry = ScenarioRegistry::builtin();
    let reference = SweepSpec::table3_fig7().candidates(2400.0);
    assert_eq!(reference.len(), 1536, "reference sweep size");
    let throughput = |name: &str| {
        let scenario = registry.get(name).expect("builtin scenario");
        let mut round = || scenario.runner().run_report_factored(&reference);
        let warm = round(); // warm thread pool + allocator paths
        assert_eq!(warm.total(), reference.len());
        assert!(warm.failures.is_empty(), "reference sweep has no bad points");
        let mut best_ms = f64::INFINITY;
        for _ in 0..3 {
            best_ms = best_ms.min(round_ms(1, &mut round));
        }
        reference.len() as f64 / (best_ms / 1e3)
    };
    let dense_pps = throughput("dense-llama3-fp16-tp4");
    let moe_pps = throughput("moe-mixtral-fp16-tp4-ep4");
    let moe_relative = moe_pps / dense_pps;
    println!(
        "{:<44} {:>10.0} points/s  (dense {:.0} points/s, {:.2}x)",
        "scenario sweep (MoE, 1536-point lattice)", moe_pps, dense_pps, moe_relative
    );

    // Leg hit-rate on the expert-axis sweep: a cold MoE pass does six
    // lookups per point, and the lattice structure means almost all of
    // them — including the ep=4 expert all-to-all communication legs —
    // hit entries a sibling point already priced.
    let registry_t = acs_telemetry::global();
    registry_t.enable();
    registry_t.reset();
    let cold = registry
        .get("moe-mixtral-fp16-tp4-ep4")
        .expect("builtin scenario")
        .runner()
        .run_report_factored(&reference);
    assert_eq!(cold.total(), reference.len());
    let counters = registry_t.counter_values();
    let counter = |name: &str| {
        counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_default()
    };
    let (hits, misses) = (counter("dse.factored.leg_hit"), counter("dse.factored.leg_miss"));
    registry_t.disable();
    registry_t.reset();
    assert_eq!(hits + misses, reference.len() as u64 * 6, "six lookups per point");
    let leg_hit_rate_pct = hits as f64 / (hits + misses) as f64 * 100.0;
    println!(
        "{:<44} {:>10.2} %         ({} hits, {} misses)",
        "leg hit-rate (cold MoE expert-axis sweep)", leg_hit_rate_pct, hits, misses
    );

    // Generous ceilings: only order-of-magnitude regressions fail.
    assert!(
        moe_relative >= 0.1,
        "MoE scenario sweep fell an order of magnitude behind dense ({moe_relative:.3}x)"
    );
    assert!(
        leg_hit_rate_pct >= 90.0,
        "cold MoE sweep should reuse >= 90% of leg lookups, got {leg_hit_rate_pct:.2}%"
    );

    write_bench(
        "scenarios",
        vec![
            ("points_per_sec_dense", dense_pps),
            ("points_per_sec_moe", moe_pps),
            ("moe_relative_throughput", moe_relative),
            ("leg_hit_rate_pct", leg_hit_rate_pct),
        ],
    );
}

#[test]
#[ignore = "smoke benchmark; run via scripts/bench-smoke.sh"]
fn bench_serve() {
    // Both transports get benched: the epoll event loop (default) and
    // the legacy worker pool, each a fresh server so cache state never
    // leaks across tiers. queue_depth is raised so the event loop's
    // per-round shed budget does not throttle the pipelined bench
    // itself (shedding is a protection benched by its own test).
    let boot = |event_loop: bool| {
        Server::bind(ServeConfig { queue_depth: 512, event_loop, ..ServeConfig::default() })
            .expect("bind ephemeral port")
    };
    let drive = |addr, mode, requests, connections, pipeline| {
        let report = run_loadgen(
            addr,
            &LoadgenConfig { requests, connections, pipeline, mode, ..LoadgenConfig::default() },
        )
        .expect("loadgen run");
        assert_eq!(report.failed, 0, "bench stream must not drop requests ({mode:?})");
        report
    };

    // --- Event-loop tier: pipelined multi-connection drive. ---
    let server = boot(true);
    let (addr, state) = (server.local_addr(), server.state());
    let (handle, thread) = server.spawn();
    // Repeated bodies ride the raw front cache after the first; unique
    // screen bodies are all distinct (cheap unique work); unique
    // simulate bodies each pay a full simulation (expensive unique).
    let repeated = drive(addr, LoadMode::Repeated, 30_000, 4, 64);
    let unique = drive(addr, LoadMode::UniqueScreen, 5_000, 4, 32);
    let sim_unique = drive(addr, LoadMode::Unique, 40, 4, 1);
    let hits = state.cache_stats()[1].hits + state.raw_hit_count();
    assert!(
        hits >= 30_000 - 64,
        "nearly all repeated requests hit a cache (semantic+raw hits={hits})"
    );
    handle.shutdown();
    thread.join().expect("server thread");

    // --- Pool tier: same streams, legacy transport. ---
    let server = boot(false);
    let addr = server.local_addr();
    let (handle, thread) = server.spawn();
    let pool_repeated = drive(addr, LoadMode::Repeated, 4_000, 4, 1);
    let pool_unique = drive(addr, LoadMode::UniqueScreen, 2_000, 4, 1);
    handle.shutdown();
    thread.join().expect("server thread");

    let speedup = if sim_unique.qps > 0.0 { repeated.qps / sim_unique.qps } else { 0.0 };
    println!(
        "loadgen event-loop repeated      {:>9.1} qps  p50 {:>8.3} ms  p99 {:>8.3} ms",
        repeated.qps, repeated.p50_ms, repeated.p99_ms
    );
    println!(
        "loadgen event-loop unique-screen {:>9.1} qps  p50 {:>8.3} ms  p99 {:>8.3} ms",
        unique.qps, unique.p50_ms, unique.p99_ms
    );
    println!(
        "loadgen event-loop unique-sim    {:>9.1} qps  p50 {:>8.3} ms  p99 {:>8.3} ms",
        sim_unique.qps, sim_unique.p50_ms, sim_unique.p99_ms
    );
    println!(
        "loadgen pool       repeated      {:>9.1} qps  unique-screen {:>9.1} qps",
        pool_repeated.qps, pool_unique.qps
    );

    assert!(repeated.p50_ms > 0.0 && repeated.p50_ms <= repeated.p99_ms);
    assert!(speedup > 1.0, "repeated stream must beat unique simulate (got {speedup:.2}x)");

    write_bench(
        "serve",
        vec![
            ("unique_qps", unique.qps),
            ("repeated_qps", repeated.qps),
            ("sim_unique_qps", sim_unique.qps),
            ("cache_speedup", speedup),
            ("pool_unique_qps", pool_unique.qps),
            ("pool_repeated_qps", pool_repeated.qps),
            ("unique_p50_ms", unique.p50_ms),
            ("unique_p99_ms", unique.p99_ms),
            ("repeated_p50_ms", repeated.p50_ms),
            ("repeated_p99_ms", repeated.p99_ms),
        ],
    );
}
