//! Dependency-free smoke benchmark.
//!
//! The criterion harness in `crates/bench` cannot build in the offline
//! environment (criterion is not vendored), which left the repo with no
//! runnable performance check at all. This test is the std-only
//! replacement: it times the hot paths with `std::time::Instant`, prints
//! a small report, and enforces only very generous ceilings — it exists
//! to catch order-of-magnitude regressions and to prove the paths run,
//! not to produce publishable numbers.
//!
//! Ignored by default so `cargo test` stays fast; run it with
//! `scripts/bench-smoke.sh` or
//! `cargo test --release --test bench_smoke -- --ignored --nocapture`.

use acs::prelude::*;
use acs_cache::ShardedCache;
use acs_dse::DseRunner;
use acs_llm::{LengthDistribution, RequestTrace};
use acs_sim::{simulate_serving_cached, ServingConfig, StepCostCache};
use std::sync::Arc;
use std::time::Instant;

fn time<T>(label: &str, iterations: u32, mut f: impl FnMut() -> T) -> f64 {
    // One warm-up call keeps lazy initialisation out of the measurement.
    let _ = f();
    let started = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(f());
    }
    let per_call_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(iterations);
    println!("{label:<44} {per_call_ms:>10.3} ms/call  ({iterations} calls)");
    per_call_ms
}

#[test]
#[ignore = "smoke benchmark; run via scripts/bench-smoke.sh"]
fn bench_smoke() {
    let node = SystemConfig::quad(DeviceConfig::a100_like()).expect("quad node");
    let sim = Simulator::new(node);
    let gpt3 = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();

    let layer_ms = time("simulate_layer (GPT-3 175B prefill)", 200, || {
        sim.simulate_layer(&gpt3, &work, InferencePhase::Prefill)
    });

    let runner = DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default());
    let a100 = DeviceConfig::a100_like();
    let eval_ms = time("DseRunner::try_evaluate (uncached)", 50, || {
        runner.try_evaluate(&a100).expect("evaluation succeeds")
    });

    let cache = Arc::new(ShardedCache::new(1024));
    let cached_runner = DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
        .with_cache(Arc::clone(&cache));
    cached_runner.try_evaluate(&a100).expect("prime the cache");
    let cached_ms = time("DseRunner::try_evaluate (cache hit)", 2000, || {
        cached_runner.try_evaluate(&a100).expect("cached evaluation succeeds")
    });

    let trace = RequestTrace::synthetic(
        4.0,
        5.0,
        LengthDistribution::chat_prompts(),
        LengthDistribution::chat_outputs(),
        7,
    )
    .expect("synthetic trace");
    let llama = ModelConfig::llama3_8b();
    let steps = StepCostCache::new(4096);
    // Prime so the timing below measures the steady (warm-cache) state.
    simulate_serving_cached(&sim, &llama, &trace, ServingConfig::default(), &steps);
    let serving_ms = time("simulate_serving_cached (warm steps)", 20, || {
        simulate_serving_cached(&sim, &llama, &trace, ServingConfig::default(), &steps)
    });

    // Generous ceilings: only order-of-magnitude regressions fail.
    assert!(layer_ms < 100.0, "layer simulation took {layer_ms:.1} ms");
    assert!(eval_ms < 500.0, "design evaluation took {eval_ms:.1} ms");
    // No cached-vs-uncached comparison here: a single analytic evaluation
    // is microseconds in release builds, on the same order as a cache
    // lookup. The cache's payoff is at the request level (serving steps,
    // whole /v1/simulate bodies), which the loadgen check in scripts/ci.sh
    // measures end to end.
    assert!(cached_ms < 5.0, "cache hit took {cached_ms:.3} ms");
    assert!(serving_ms < 2000.0, "serving simulation took {serving_ms:.1} ms");
}
