//! Golden equivalence between the planned sweep pipeline and the legacy
//! per-point pipeline.
//!
//! The plan-then-execute split (`LayerPlan` built once per sweep, priced
//! per point) is a pure scheduling change: it must not move a single bit
//! of any result. These tests drive both pipelines over a large sweep —
//! including injected faults and mixed datatypes — and compare the
//! canonical JSON digests of every evaluated design plus the full
//! failure ledger.

use acs_cache::CacheKey;
use acs_dse::{inject_faults, DseRunner, EvaluatedDesign, SweepSpec};
use acs_hw::{DataType, DeviceConfig};
use acs_llm::{ModelConfig, WorkloadConfig};

/// Canonical content digest of one evaluated design. Any drift in any
/// field — including the float bit patterns, which the canonical codec
/// round-trips exactly — changes this value.
fn design_digest(design: &EvaluatedDesign) -> u64 {
    let value = design.to_json_value().expect("evaluated designs serialise");
    CacheKey::from_value(&value).digest()
}

fn runner() -> DseRunner {
    DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
}

#[test]
fn planned_sweep_is_bit_identical_to_legacy_with_faults() {
    // 512 points, with a fault injected every 7th: the planned pipeline
    // must reproduce the legacy pipeline's successes bit-for-bit AND
    // fail at exactly the same indices with the same error kinds.
    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    assert!(candidates.len() >= 200, "need a representative sweep, got {}", candidates.len());
    let injected = inject_faults(&mut candidates, 7);
    assert!(!injected.is_empty());

    let planned = runner().run_report(&candidates);
    let legacy = runner().run_report_legacy(&candidates);

    assert_eq!(planned.total(), candidates.len());
    assert_eq!(planned.total(), legacy.total());

    // Failure ledger: same indices, same candidate names, same kinds.
    assert_eq!(planned.failures.len(), legacy.failures.len());
    for (p, l) in planned.failures.iter().zip(&legacy.failures) {
        assert_eq!(p.index, l.index);
        assert_eq!(p.params, l.params);
        assert_eq!(p.kind(), l.kind());
    }

    // Successes: same indices, and canonically identical content.
    assert_eq!(planned.designs.len(), legacy.designs.len());
    assert!(!planned.designs.is_empty());
    for ((pi, pd), (li, ld)) in planned.designs.iter().zip(&legacy.designs) {
        assert_eq!(pi, li);
        assert_eq!(
            design_digest(pd),
            design_digest(ld),
            "design {} diverged between planned and legacy pipelines",
            pd.name
        );
        assert_eq!(pd.ttft_s.to_bits(), ld.ttft_s.to_bits());
        assert_eq!(pd.tbt_s.to_bits(), ld.tbt_s.to_bits());
    }
}

#[test]
fn planned_sweep_is_bit_identical_across_mixed_dtypes() {
    // A sweep whose devices alternate int8 / fp16 / fp32 exercises one
    // plan pair per datatype width in a single run.
    let base = SweepSpec::table3_fig6().configs(4800.0);
    let configs: Vec<DeviceConfig> = base
        .iter()
        .take(48)
        .enumerate()
        .map(|(i, cfg)| {
            let dtype = match i % 3 {
                0 => DataType::Int8,
                1 => DataType::Fp16,
                _ => DataType::Fp32,
            };
            cfg.to_builder().datatype(dtype).build().expect("datatype swap keeps configs valid")
        })
        .collect();
    assert_eq!(configs.len(), 48);

    let r = runner();
    let parallel_planned = r.run_configs(&configs);
    for (cfg, outcome) in configs.iter().zip(&parallel_planned) {
        let planned = outcome.as_ref().expect("healthy configs evaluate");
        let legacy = r.try_evaluate_legacy(cfg).expect("legacy path agrees on health");
        assert_eq!(
            design_digest(planned),
            design_digest(&legacy),
            "dtype {:?} diverged between planned and legacy pipelines",
            cfg.datatype()
        );
    }
}
