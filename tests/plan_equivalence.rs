//! Golden equivalence between the planned sweep pipeline and the legacy
//! per-point pipeline, expressed as differential cases.
//!
//! The plan-then-execute split (`LayerPlan` built once per sweep, priced
//! per point) is a pure scheduling change: it must not move a single bit
//! of any result. The comparison machinery — canonical digests, failure
//! ledgers, paired/set disciplines — lives in `acs_verify::differential`;
//! these tests only declare *which* arms over *which* sweep.

use acs_dse::{inject_faults, SweepSpec};
use acs_hw::{DataType, DeviceConfig};
use acs_verify::{design_digest, DiffCase, Differential, EvalPath, Transform};

#[test]
fn planned_sweep_is_bit_identical_to_legacy_with_faults() {
    // 512 points, with a fault injected every 7th: the planned pipeline
    // must reproduce the legacy pipeline's successes bit-for-bit AND
    // fail at exactly the same indices with the same error kinds.
    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    assert!(candidates.len() >= 200, "need a representative sweep, got {}", candidates.len());
    let injected = inject_faults(&mut candidates, 7);
    assert!(!injected.is_empty());

    let case = DiffCase::paths("planned-vs-legacy-faulted", EvalPath::Planned, EvalPath::Legacy);
    let report = Differential::paper_default().run(&candidates, &case);
    assert_eq!(report.points, candidates.len());
    assert!(report.ok > 0, "the sweep must produce successes");
    assert!(report.failed > 0, "the injected faults must reach the ledger");
    report.assert_clean();
}

#[test]
fn planned_sweep_is_unmoved_by_cache_threads_and_order() {
    // The same faulted sweep under every metamorphic transform the
    // planned pipeline promises to be invariant to: a memoization cache,
    // a pinned scheduler, and a shuffled candidate order.
    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    inject_faults(&mut candidates, 7);
    let harness = Differential::paper_default();
    for transform in [
        Transform::WarmCache,
        Transform::Threads(1),
        Transform::Threads(3),
        Transform::PermuteOrder { seed: 0x51AB },
    ] {
        let label = format!("planned-{transform}");
        let case = DiffCase::metamorphic(&label, EvalPath::Planned, transform);
        harness.run(&candidates, &case).assert_clean();
    }
}

#[test]
fn planned_sweep_is_bit_identical_across_mixed_dtypes() {
    // A sweep whose devices alternate int8 / fp16 / fp32 exercises one
    // plan pair per datatype width in a single run. Datatype lives on
    // the DeviceConfig rather than the swept candidate axes, so this
    // comparison runs config-by-config.
    let base = SweepSpec::table3_fig6().configs(4800.0);
    let configs: Vec<DeviceConfig> = base
        .iter()
        .take(48)
        .enumerate()
        .map(|(i, cfg)| {
            let dtype = match i % 3 {
                0 => DataType::Int8,
                1 => DataType::Fp16,
                _ => DataType::Fp32,
            };
            cfg.to_builder().datatype(dtype).build().expect("datatype swap keeps configs valid")
        })
        .collect();
    assert_eq!(configs.len(), 48);

    let r = acs_dse::DseRunner::new(
        acs_llm::ModelConfig::llama3_8b(),
        acs_llm::WorkloadConfig::paper_default(),
    );
    let parallel_planned = r.run_configs(&configs);
    for (cfg, outcome) in configs.iter().zip(&parallel_planned) {
        let planned = outcome.as_ref().expect("healthy configs evaluate");
        let legacy = r.try_evaluate_legacy(cfg).expect("legacy path agrees on health");
        assert_eq!(
            design_digest(planned).expect("designs serialise"),
            design_digest(&legacy).expect("designs serialise"),
            "dtype {:?} diverged between planned and legacy pipelines",
            cfg.datatype()
        );
    }
}
