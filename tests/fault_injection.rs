//! End-to-end fault-injection harness for the DSE pipeline.
//!
//! Seeds a >1,000-point sweep with every fault class, then asserts the
//! robustness contract: the sweep completes without aborting, each bad
//! point surfaces as a structured `DesignFailure` with an expected error
//! kind, healthy points are unaffected, and an interrupted checkpointed
//! run resumes to a report identical to an uninterrupted one.

use acs_dse::{inject_faults, DseRunner, FaultClass, SweepSpec};
use acs_llm::{ModelConfig, WorkloadConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn runner() -> DseRunner {
    DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
}

/// The October 2023 sweep (1536 points) at the 2400 TPP target.
fn big_candidates() -> Vec<acs_dse::CandidateParams> {
    let cands = SweepSpec::table3_fig7().candidates(2400.0);
    assert!(cands.len() >= 1000, "need a >=1000-point sweep, got {}", cands.len());
    cands
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("acs-fault-injection");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

#[test]
fn thousand_point_sweep_survives_all_fault_classes() {
    let mut candidates = big_candidates();
    let ledger = inject_faults(&mut candidates, 7);
    let classes: std::collections::BTreeSet<_> = ledger.iter().map(|(_, c)| c.tag()).collect();
    assert!(classes.len() >= 5, "all five fault classes must be seeded: {classes:?}");

    // The sweep must complete and account for every point.
    let report = runner().run_report(&candidates);
    assert_eq!(report.total(), candidates.len());

    let injected: BTreeMap<usize, FaultClass> = ledger.iter().copied().collect();
    let failed: BTreeMap<usize, &acs_dse::DesignFailure> =
        report.failures.iter().map(|f| (f.index, f)).collect();

    // Every failure is an injected point (healthy designs never fail) and
    // carries an error kind the fault class allows.
    for (index, failure) in &failed {
        let class = injected
            .get(index)
            .unwrap_or_else(|| panic!("uninjected point #{index} failed: {failure}"));
        assert!(
            class.allowed_failure_kinds().contains(&failure.kind()),
            "{class}: unexpected kind {} ({failure})",
            failure.kind()
        );
        assert_eq!(failure.params, candidates[*index].name);
    }

    // Every injected point either failed or belongs to a class whose
    // graceful degradation is a successful (finite) evaluation.
    let ok_by_index: BTreeMap<usize, _> =
        report.designs.iter().map(|(i, d)| (*i, d)).collect();
    for (index, class) in &injected {
        if failed.contains_key(index) {
            continue;
        }
        assert!(class.may_succeed(), "{class} at #{index} must fail, but evaluated");
        let d = ok_by_index[index];
        for (metric, v) in [("ttft_s", d.ttft_s), ("tbt_s", d.tbt_s), ("area", d.die_area_mm2)] {
            assert!(v.is_finite() && v > 0.0, "{class} #{index}: {metric} = {v}");
        }
        if *class == FaultClass::ReticleOverflow {
            assert!(!d.within_reticle, "a reticle-busting die must be flagged");
        }
    }

    // The validation fault classes always fail — they must appear in the
    // ledger's counts.
    let counts = report.failure_counts();
    let must_fail = ledger
        .iter()
        .filter(|(_, c)| !c.may_succeed())
        .count();
    assert!(must_fail > 0);
    assert_eq!(counts.get("invalid_config"), Some(&must_fail), "{counts:?}");

    // Healthy points match a fault-free sweep exactly.
    let clean = runner().run_report(&big_candidates());
    assert!(clean.failures.is_empty(), "{}", clean.summary());
    let clean_by_index: BTreeMap<usize, _> =
        clean.designs.iter().map(|(i, d)| (*i, d)).collect();
    for (i, d) in &report.designs {
        if !injected.contains_key(i) {
            assert_eq!(Some(&d), clean_by_index.get(i).as_deref(), "point #{i} diverged");
        }
    }
}

#[test]
fn interrupted_checkpoint_resumes_to_identical_report() {
    let mut candidates = big_candidates();
    inject_faults(&mut candidates, 13);
    let r = runner();

    // Uninterrupted checkpointed run = ground truth.
    let path = temp_path("resume");
    let _ = std::fs::remove_file(&path);
    let full = r.run_report_resumable(&candidates, &path).unwrap();
    assert_eq!(full.total(), candidates.len());
    assert_eq!(full, r.run_report(&candidates));

    // Simulate a crash: keep an arbitrary prefix of the checkpoint and
    // tear the next line mid-write.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 3;
    let mut torn = lines[..keep].join("\n");
    torn.push('\n');
    torn.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&path, &torn).unwrap();

    let resumed = r.run_report_resumable(&candidates, &path).unwrap();
    assert_eq!(resumed, full, "resumed report diverged from the uninterrupted run");

    // And the repaired checkpoint now resumes with zero re-evaluation.
    let lines_after = std::fs::read_to_string(&path).unwrap().lines().count();
    let again = r.run_report_resumable(&candidates, &path).unwrap();
    assert_eq!(again, full);
    assert_eq!(
        std::fs::read_to_string(&path).unwrap().lines().count(),
        lines_after,
        "a fully-covered checkpoint must not grow on resume"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn faulted_sweep_summary_is_reportable() {
    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    inject_faults(&mut candidates, 51);
    let report = runner().run_report(&candidates);
    let s = report.summary();
    assert!(s.contains("failed"), "{s}");
    assert!(s.contains("invalid_config"), "{s}");
    for f in &report.failures {
        // Each failure names its point and renders a human-readable line.
        assert!(f.to_string().contains(&f.params), "{f}");
    }
}
