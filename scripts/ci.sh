#!/usr/bin/env bash
# Tier-1 verification: offline release build, full test suite, and the
# fault-injection robustness suite. Mirrors what the driver runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked"
cargo build --release --locked --offline

echo "==> cargo test -q --locked"
cargo test -q --locked --offline

echo "==> fault-injection suite"
cargo test -q --locked --offline --test fault_injection

echo "==> error-handling policy grep (non-test library code must be clean)"
# Hits are allowed only inside #[cfg(test)] modules; this mechanical pass
# fails if any file's pre-test-module region contains a panic site.
fail=0
files=$(grep -rl "unwrap()\|expect(\|panic!" crates/hw/src crates/sim/src crates/dse/src crates/devices/src crates/llm/src 2>/dev/null || true)
for f in $files; do
    cut=$(awk '/#\[cfg\(test\)\]/{print NR; exit}' "$f")
    [ -z "$cut" ] && cut=$(($(wc -l < "$f") + 1))
    if head -n $((cut - 1)) "$f" | grep -n "unwrap()\|expect(\|panic!" >/dev/null; then
        echo "panic site outside test module in $f:"
        head -n $((cut - 1)) "$f" | grep -n "unwrap()\|expect(\|panic!" || true
        fail=1
    fi
done
[ "$fail" -eq 0 ] && echo "clean"
exit "$fail"
