#!/usr/bin/env bash
# Tier-1 verification: offline release build, full test suite, and the
# fault-injection robustness suite. Mirrors what the driver runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked"
cargo build --release --locked --offline

echo "==> cargo test -q --locked"
cargo test -q --locked --offline

echo "==> fault-injection suite"
cargo test -q --locked --offline --test fault_injection

echo "==> factored-evaluator golden equivalence (bit-identity vs planned path)"
cargo test -q --release --locked --offline --test factored_equivalence

echo "==> lattice-engine golden equivalence (bit-identity vs factored path)"
cargo test -q --release --locked --offline --test lattice_equivalence

echo "==> what-if corner-pinning prune (counter-proven skip, byte-identical records)"
cargo test -q --release --locked --offline --test whatif_prune

echo "==> verification harness (golden corpus, seeded fuzz, socket chaos)"
# Golden-corpus diff: the blessed sweep digests, the 64-variant what-if
# rule-grid digest, and the paper anchors in
# crates/verify/corpus/golden.json must be bit-identical to a fresh
# evaluation. The differential suite includes the whatif batch-vs-naive
# ledger case. Then a fixed-seed structured fuzz pass (10k mutations over
# the HTTP surface — /v1/whatif rule grids included — and the JSON/CSV
# codecs, plus the checked-in regression corpus, with the incremental
# parse_request_bytes checked for frame-equivalence against the blocking
# parser on every input) and one socket-fault chaos round against a live
# event-loop server, all of which must end with zero findings and a
# healthy server. The diff suite includes the serve-tier differential:
# the epoll event loop and the legacy worker pool must answer one
# replayed corpus with byte-equal responses.
cargo run -q --release --locked --offline -p acs-verify --bin acs-verify -- corpus
cargo run -q --release --locked --offline -p acs-verify --bin acs-verify -- diff
cargo run -q --release --locked --offline -p acs-verify --bin acs-verify -- fuzz --iters 10000 --seed 1
cargo run -q --release --locked --offline -p acs-verify --bin acs-verify -- chaos --rounds 1 --seed 1

echo "==> quickstart example"
cargo run -q --release --locked --offline --example quickstart >/dev/null
echo "ok"

echo "==> serve loopback smoke test"
# Boot the real binary with a fifo as its stdin (the signal pipe), find
# the ephemeral port from its startup log, run the end-to-end client
# against it — which asserts a /v1/simulate cache hit and a chunked
# /v1/whatif rule-grid stream (with its cache hit) via /v1/metrics —
# then stop it with a graceful 'shutdown' line and require a clean exit.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
mkfifo "$smokedir/ctl"
cargo run -q --release --locked --offline -p acs-serve --bin acs-serve \
    > "$smokedir/serve.log" 2>&1 < "$smokedir/ctl" &
serve_pid=$!
exec 3> "$smokedir/ctl"   # hold the pipe open so stdin stays live
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*listening on http://##p' "$smokedir/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$smokedir/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address"; cat "$smokedir/serve.log"; exit 1; }
cargo run -q --release --locked --offline --example serve_client -- --addr "$addr"
echo "shutdown" >&3
exec 3>&-
wait "$serve_pid" || { echo "server exited uncleanly"; cat "$smokedir/serve.log"; exit 1; }
echo "ok (served on $addr, graceful shutdown)"

echo "==> loadgen cache-speedup check (repeated vs unique QPS)"
cargo run -q --release --locked --offline -p acs-serve --bin acs-serve -- \
    --loadgen --mode compare --requests 60 --concurrency 4 --assert-ratio 10

echo "==> pool-tier loadgen smoke (legacy transport stays alive behind --pool)"
cargo run -q --release --locked --offline -p acs-serve --bin acs-serve -- \
    --loadgen --pool --mode repeated --requests 60 --connections 2 --pipeline 4

echo "==> profiled smoke bench (includes the <5% telemetry-overhead assertion)"
ACS_BENCH_DIR="$smokedir" scripts/bench-smoke.sh

echo "==> bench artefact schema validation (acs-bench-v1, plan >= 1.5x, factored >= 2x, lattice >= 5x, serve >= 50k/2k qps)"
cargo run -q --release --locked --offline --example bench_validate -- \
    --min-dse-plan-speedup 1.5 \
    --min-dse-factored-speedup 2.0 \
    --min-dse-lattice-speedup 5.0 \
    --min-serve-cached-qps 50000 \
    --min-serve-unique-qps 2000 \
    "$smokedir/BENCH_dse.json" "$smokedir/BENCH_serve.json" "$smokedir/BENCH_whatif.json" \
    "$smokedir/BENCH_scenarios.json" "$smokedir/BENCH_lattice.json"

echo "==> profiled DSE trace determinism (identical structure across runs)"
# Two identical profiled runs must serialise to traces that differ only
# in timing-valued fields; structure (span IDs/ordering, instrument names
# and counts) is asserted inside tests/telemetry.rs, so here we only
# check the CLI end of the contract: both runs exit cleanly and emit the
# same number and sequence of line types.
ACS_RESULTS_DIR="$smokedir" cargo run -q --release --locked --offline -p acs-dse --bin acs-dse -- \
    --sweep table3-fig6 --limit 12 --profile --cache --trace "$smokedir/trace_a.jsonl" >/dev/null
ACS_RESULTS_DIR="$smokedir" cargo run -q --release --locked --offline -p acs-dse --bin acs-dse -- \
    --sweep table3-fig6 --limit 12 --profile --cache --trace "$smokedir/trace_b.jsonl" >/dev/null
shape_a=$(grep -o '"type":"[a-z_]*"' "$smokedir/trace_a.jsonl")
shape_b=$(grep -o '"type":"[a-z_]*"' "$smokedir/trace_b.jsonl")
[ "$shape_a" = "$shape_b" ] || { echo "profiled trace structure differs between runs"; exit 1; }
echo "ok ($(wc -l < "$smokedir/trace_a.jsonl") trace lines, identical structure)"

echo "==> error-handling policy grep (non-test library code must be clean)"
# Hits are allowed only inside #[cfg(test)] modules and comments; this
# mechanical pass fails if any file's pre-test-module region contains a
# panic site in live code.
fail=0
files=$(grep -rl "unwrap()\|expect(\|panic!" crates/hw/src crates/sim/src crates/dse/src crates/devices/src crates/llm/src crates/cache/src crates/serve/src crates/telemetry/src crates/whatif/src crates/scenarios/src 2>/dev/null || true)
for f in $files; do
    cut=$(awk '/#\[cfg\(test\)\]/{print NR; exit}' "$f")
    [ -z "$cut" ] && cut=$(($(wc -l < "$f") + 1))
    hits=$(head -n $((cut - 1)) "$f" | grep -n "unwrap()\|expect(\|panic!" | grep -v '^[0-9]*:[[:space:]]*//' || true)
    if [ -n "$hits" ]; then
        echo "panic site outside test module in $f:"
        echo "$hits"
        fail=1
    fi
done
[ "$fail" -eq 0 ] && echo "clean"
exit "$fail"
