#!/usr/bin/env bash
# Run the dependency-free smoke benchmark (tests/bench_smoke.rs).
#
# The criterion benches under crates/bench need a crates-io registry and
# cannot build offline; this script times the same hot paths with the
# std-only harness instead. Numbers are indicative, not publishable —
# the assertions only catch order-of-magnitude regressions (plus the
# telemetry-overhead budget, which is a real contract).
#
# Writes BENCH_dse.json, BENCH_lattice.json, BENCH_scenarios.json,
# BENCH_serve.json, and BENCH_whatif.json (schema acs-bench-v1) to the
# repo root, or to $ACS_BENCH_DIR when set.
# Single-threaded so the benches never time each other's noise.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test --release --offline --test bench_smoke -- --ignored --nocapture --test-threads=1
