#!/usr/bin/env bash
# Run the dependency-free smoke benchmark (tests/bench_smoke.rs).
#
# The criterion benches under crates/bench need a crates-io registry and
# cannot build offline; this script times the same hot paths with the
# std-only harness instead. Numbers are indicative, not publishable —
# the assertions only catch order-of-magnitude regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test --release --offline --test bench_smoke -- --ignored --nocapture
