//! Chip Architectures Under Advanced Computing Sanctions — facade crate.
//!
//! This crate re-exports the full public API of the workspace, giving
//! downstream users a single dependency:
//!
//! * [`hw`] — hardware templates, TPP arithmetic, area and cost models.
//! * [`llm`] — LLM workload descriptions (GPT-3 175B, Llama 3 8B) and
//!   operator graphs for prefill and decoding.
//! * [`sim`] — the analytical performance simulator (TTFT / TBT).
//! * [`policy`] — the Advanced Computing Rule engine (Oct 2022, Oct 2023,
//!   Dec 2024 HBM; NAC tiers; legacy CTP/APP metrics).
//! * [`devices`] — a curated database of 65 real NVIDIA/AMD GPUs.
//! * [`dse`] — design-space exploration sweeps, filters, and statistics.
//! * [`core`] — the paper's contribution: sanction-compliant design
//!   optimisation and architecture-first policy analysis.
//! * [`cache`] — a sharded, content-addressed result cache shared by the
//!   DSE evaluator, the serving simulator, and the query service.
//! * [`serve`] — a zero-dependency HTTP/1.1 service exposing screening
//!   and simulation as JSON endpoints.
//! * [`whatif`] — the policy what-if engine: parameterized rule regimes,
//!   rule-grid batch screening, classification deltas and externality
//!   accounting (streamed by serve's `/v1/whatif`).
//!
//! # Quickstart
//!
//! ```
//! use acs::prelude::*;
//!
//! // Classify the modeled A100 under the October 2023 rule.
//! let device = DeviceConfig::a100_like();
//! let area = AreaModel::n7().die_area(&device).total_mm2();
//! let metrics = DeviceMetrics::from_config(&device, area, MarketSegment::DataCenter);
//! let class = Acr2023::default().classify(&metrics);
//! assert_eq!(class, Classification::LicenseRequired);
//! ```

pub use acs_cache as cache;
pub use acs_core as core;
pub use acs_devices as devices;
pub use acs_serve as serve;
pub use acs_dse as dse;
pub use acs_hw as hw;
pub use acs_llm as llm;
pub use acs_policy as policy;
pub use acs_sim as sim;
pub use acs_whatif as whatif;

/// Commonly used items, importable with `use acs::prelude::*`.
pub mod prelude {
    pub use acs_core::prelude::*;
    pub use acs_devices::{DeviceRecord, GpuDatabase, Vendor};
    pub use acs_dse::prelude::*;
    pub use acs_hw::{
        AreaModel, CostModel, DataType, DeviceConfig, HbmConfig, ProcessNode, SystemConfig,
        SystolicDims, Tpp,
    };
    pub use acs_llm::{InferencePhase, ModelConfig, WorkloadConfig};
    pub use acs_policy::{
        Acr2022, Acr2023, Classification, DeviceMetrics, MarketSegment,
    };
    pub use acs_sim::{LayerLatency, Simulator};
}
